"""Scan-model algorithms: the paper's five worked examples plus the other
Table 1 entries.

Paper sections:

* :mod:`~repro.algorithms.radix_sort` — split radix sort (2.2.1)
* :mod:`~repro.algorithms.quicksort` — segmented quicksort (2.3.1)
* :mod:`~repro.algorithms.mst` — random-mate minimum spanning tree (2.3.3)
* :mod:`~repro.algorithms.line_drawing` — allocation-based lines (2.4.1)
* :mod:`~repro.algorithms.halving_merge` — the halving merge (2.5.1)

Table 1 / Table 5 companions:

* :mod:`~repro.algorithms.connected_components`,
  :mod:`~repro.algorithms.maximal_independent_set`,
  :mod:`~repro.algorithms.forest` (Euler-tour rootfix)
* :mod:`~repro.algorithms.list_ranking`,
  :mod:`~repro.algorithms.tree_contraction`
* :mod:`~repro.algorithms.convex_hull`, :mod:`~repro.algorithms.kd_tree`,
  :mod:`~repro.algorithms.closest_pair`,
  :mod:`~repro.algorithms.line_of_sight`
* :mod:`~repro.algorithms.matrix` — matmul, vector-matrix, linear solver
"""
from .biconnected import BiconnectedResult, biconnected_components
from .bignum import (
    big_add,
    evaluate_polynomial,
    generic_scan,
    powers_of,
    scan_add,
)
from .branch_and_bound import (
    KnapsackResult,
    knapsack_branch_and_bound,
    knapsack_dp,
)
from .closest_pair import ClosestPairResult, closest_pair
from .connected_components import ComponentsResult, connected_components
from .convex_hull import HullResult, convex_hull
from .forest import rootfix
from .halving_merge import halving_merge, near_merge_fix
from .kd_tree import KDLevel, KDTree, build_kd_tree
from .line_drawing import LineDrawing, draw_lines, render
from .line_of_sight import line_of_sight_grid, visibility
from .list_ranking import list_rank, list_rank_and_tail, list_rank_sampled
from .matrix import ParallelMatrix, mat_mul, mat_vec, solve
from .max_flow import MaxFlowResult, max_flow
from .maximal_independent_set import MISResult, maximal_independent_set
from .mst import MSTResult, minimum_spanning_tree
from .quicksort import QuicksortTrace, quicksort
from .sparse import SparseMatrix
from .radix_sort import (
    key_bits,
    split_radix_sort,
    split_radix_sort_float,
    split_radix_sort_signed,
    split_radix_sort_with_rank,
)
from .codecs import delta_decode, delta_encode, rle_decode, rle_encode
from .list_contraction import (
    ContractionResult,
    list_contraction,
    serial_list_ranks,
)
from .random_permutation import (
    PermutationResult,
    random_permutation,
    serial_random_permutation,
)
from .text import CsvSplit, FieldSplit, parse_csv, split_fields
from .tree_contraction import ExpressionTree, tree_contract
from .treefix import RootedTree, build_rooted_tree, root_tree_edges

__all__ = [
    "BiconnectedResult",
    "ClosestPairResult",
    "RootedTree",
    "SparseMatrix",
    "biconnected_components",
    "build_rooted_tree",
    "root_tree_edges",
    "KnapsackResult",
    "big_add",
    "evaluate_polynomial",
    "generic_scan",
    "knapsack_branch_and_bound",
    "knapsack_dp",
    "powers_of",
    "scan_add",
    "ComponentsResult",
    "ExpressionTree",
    "HullResult",
    "KDLevel",
    "KDTree",
    "LineDrawing",
    "MISResult",
    "MSTResult",
    "MaxFlowResult",
    "max_flow",
    "ParallelMatrix",
    "QuicksortTrace",
    "ContractionResult",
    "CsvSplit",
    "FieldSplit",
    "PermutationResult",
    "build_kd_tree",
    "closest_pair",
    "connected_components",
    "convex_hull",
    "delta_decode",
    "delta_encode",
    "draw_lines",
    "halving_merge",
    "key_bits",
    "line_of_sight_grid",
    "list_contraction",
    "list_rank",
    "list_rank_and_tail",
    "list_rank_sampled",
    "mat_mul",
    "mat_vec",
    "maximal_independent_set",
    "minimum_spanning_tree",
    "near_merge_fix",
    "parse_csv",
    "quicksort",
    "radix_sort",
    "random_permutation",
    "render",
    "rle_decode",
    "rle_encode",
    "rootfix",
    "serial_list_ranks",
    "serial_random_permutation",
    "solve",
    "split_fields",
    "split_radix_sort",
    "split_radix_sort_float",
    "split_radix_sort_signed",
    "split_radix_sort_with_rank",
    "tree_contract",
    "visibility",
]

from . import radix_sort  # noqa: E402  (module alias for qualified access)
