"""Branch-and-bound search by processor allocation and load balancing.

Section 2.4 motivates allocation with "the branching part of many
branch-and-bound algorithms" (its example is a chess search: each position
dynamically allocates a processor per candidate move) and Section 2.5 adds
the bounding part: pruned branches drop out and the survivors are load
balanced.

This module is that pattern, concretely: an exact parallel 0/1-knapsack
solver.  The frontier of partial solutions lives in a vector; each level

1. computes, per node, how many children survive the bound (0, 1 or 2),
2. **allocates** a processor per child with one ``+-scan`` (Figure 8),
3. distributes the parent state over its children segment and extends it,
4. **prunes** dominated/infeasible nodes and packs the survivors
   (Figure 11's load balancing),

so each level costs O(1) program steps plus the pack, independent of how
bushy the tree is — the paper's dynamic-parallelism story end to end.
The bound is the classic fractional-relaxation bound, and the incumbent
is maintained with a ``max-reduce`` per level.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import ops, scans
from ..core.vector import Vector
from ..machine.model import Machine

__all__ = ["knapsack_branch_and_bound", "KnapsackResult", "knapsack_dp"]


@dataclass
class KnapsackResult:
    """``best_value`` and statistics of the search."""

    best_value: int
    levels: int
    max_frontier: int
    nodes_expanded: int


def knapsack_dp(values, weights, capacity: int) -> int:
    """Reference dynamic program (host-side oracle)."""
    best = np.zeros(capacity + 1, dtype=np.int64)
    for v, w in zip(values, weights):
        if w <= capacity:
            cand = best[: capacity + 1 - w] + v
            best[w:] = np.maximum(best[w:], cand)
    return int(best.max())


def _fractional_bound(value, weight, level, v_sorted, w_sorted, capacity):
    """Upper bound for each frontier node: current value plus the greedy
    fractional completion over the remaining (density-sorted) items.
    Host-side arithmetic mirrored by a constant number of charged
    elementwise steps (the per-node loop body is O(items) local work that
    each processor does on its own data)."""
    n_nodes = len(value)
    bound = value.astype(np.float64).copy()
    room = (capacity - weight).astype(np.float64)
    for j in range(level, len(v_sorted)):
        take = np.minimum(room, w_sorted[j])
        bound += take * (v_sorted[j] / w_sorted[j])
        room -= take
        if (room <= 0).all():
            break
    return bound


def knapsack_branch_and_bound(machine: Machine, values, weights,
                              capacity: int) -> KnapsackResult:
    """Solve 0/1 knapsack exactly by frontier expansion on the scan model."""
    values = np.asarray(values, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.int64)
    if len(values) != len(weights):
        raise ValueError("values and weights must have equal length")
    if (weights <= 0).any() or (values < 0).any():
        raise ValueError("weights must be positive and values non-negative")
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    n_items = len(values)

    # branch in density order so the fractional bound prunes hard
    order = np.argsort(-(values / weights), kind="stable")
    v_sorted = values[order].astype(np.float64)
    w_sorted = weights[order].astype(np.float64)
    vi = values[order]
    wi = weights[order]

    m = machine
    # frontier vectors: accumulated value and weight per live node
    val = Vector(m, np.zeros(1, dtype=np.int64))
    wgt = Vector(m, np.zeros(1, dtype=np.int64))
    incumbent = 0
    max_frontier = 1
    expanded = 0

    for level in range(n_items):
        k = len(val)
        if k == 0:
            break
        expanded += k
        max_frontier = max(max_frontier, k)

        # children per node: the 'skip' child always exists; the 'take'
        # child only if it fits (one elementwise step)
        fits = wgt + int(wi[level]) <= capacity
        counts = fits.astype(np.int64) + 1

        # allocation: one +-scan sizes the next frontier (Figure 8)
        seg_flags, hpointers = ops.allocate(m, counts)
        total = len(seg_flags)

        # route parents to their children: skip child at the segment head,
        # take child (when present) right after — one permute for each
        take_tgt = ops.pack(hpointers + 1, fits)
        sv = ops.pack(val + int(vi[level]), fits)
        sw = ops.pack(wgt + int(wi[level]), fits)
        new_val = ops.concat(val, sv).permute(
            ops.concat(hpointers, take_tgt), length=total)
        new_wgt = ops.concat(wgt, sw).permute(
            ops.concat(hpointers, take_tgt), length=total)

        # bounding: update the incumbent (a max-reduce) and prune nodes
        # whose optimistic bound cannot beat it
        incumbent = max(incumbent, int(scans.max_reduce(new_val)))
        m.charge_elementwise(total)
        bound = _fractional_bound(new_val.data, new_wgt.data, level + 1,
                                  v_sorted, w_sorted, capacity)
        keep = Vector(m, bound > incumbent + 1e-9) | (new_val == incumbent)
        # drop duplicates of the incumbent beyond one representative is
        # unnecessary; load balancing packs the survivors (Figure 11)
        val = ops.load_balance(new_val, keep)
        wgt = ops.load_balance(new_wgt, keep)

    if len(val):
        incumbent = max(incumbent, int(scans.max_reduce(val)))
    return KnapsackResult(best_value=incumbent, levels=n_items,
                          max_frontier=max_frontier, nodes_expanded=expanded)
