"""List contraction by priority-local-minimum splicing (binary-forking).

Pointer jumping (:mod:`~repro.algorithms.list_ranking`) ranks a list in
O(lg n) steps but O(n lg n) work.  The BFGS list-contraction scheme
(PAPERS.md) is the work-optimal alternative the binary-forking model was
built around: give every node a random priority, and in each round splice
out the *interior* nodes that are strict priority local minima among
interior nodes.  No two spliced nodes are ever adjacent, so every pointer
read and write in a round is unique — the rounds are EREW-legal and run on
all five models unchanged.  A splice folds the node's skip distance into
its predecessor; replaying the rounds in reverse then assigns every node
its rank (distance from the head) in O(1) steps per round.

Expected O(lg n) rounds: each interior node is a local min with
probability ≥ 1/3 in a uniformly random priority order.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..machine.model import Machine

__all__ = ["ContractionResult", "list_contraction", "serial_list_ranks"]


@dataclass(frozen=True)
class ContractionResult:
    """Outcome of :func:`list_contraction`: ``ranks[i]`` is node ``i``'s
    distance from the head of the list; ``rounds`` the number of splice
    rounds (the replay adds the same number again)."""

    ranks: np.ndarray
    rounds: int


def _find_head(next_: np.ndarray) -> int:
    """The unique node no pointer targets (validates the chain shape)."""
    n = len(next_)
    tails = np.flatnonzero(next_ < 0)
    if len(tails) != 1:
        raise ValueError(f"expected exactly one tail (-1), got {len(tails)}")
    targets = next_[next_ >= 0]
    if np.any(targets >= n) or len(np.unique(targets)) != len(targets):
        raise ValueError("next pointers must form a single chain "
                         "(each node at most one predecessor)")
    # with unique targets and one tail there is exactly one unpointed
    # node; cycles are caught by the coverage check in the serial walk
    heads = np.setdiff1d(np.arange(n), targets, assume_unique=False)
    return int(heads[0])


def serial_list_ranks(next_: np.ndarray) -> np.ndarray:
    """Walk the chain on the host: the oracle the contraction must match."""
    next_ = np.asarray(next_, dtype=np.int64)
    n = len(next_)
    ranks = np.zeros(n, dtype=np.int64)
    if n == 0:
        return ranks
    node, rank = _find_head(next_), 0
    while node >= 0:
        ranks[node] = rank
        rank += 1
        node = int(next_[node])
    if rank != n:
        raise ValueError("next pointers do not cover every node")
    return ranks


def list_contraction(
    machine: Machine,
    next_: np.ndarray,
    *,
    priorities: Optional[np.ndarray] = None,
) -> ContractionResult:
    """Rank a linked list given as successor pointers (``-1`` terminates).

    ``priorities`` defaults to a fresh random permutation of ``0..n-1``
    drawn from ``machine.rng``; pass one explicitly to replay an instance.
    """
    next_ = np.asarray(next_, dtype=np.int64).copy()
    n = len(next_)
    ranks = np.zeros(n, dtype=np.int64)
    if n == 0:
        return ContractionResult(ranks=ranks, rounds=0)
    head = _find_head(next_)
    serial_list_ranks(next_)  # validates coverage before we mutate charges
    if priorities is None:
        pri = machine.rng.permutation(n).astype(np.int64)
    else:
        pri = np.asarray(priorities, dtype=np.int64)
        if len(pri) != n or len(np.unique(pri)) != n:
            raise ValueError("priorities must be n distinct values")
    # predecessor pointers: one unique permute (in-degree is at most 1)
    srcs = np.flatnonzero(next_ >= 0).astype(np.int64)
    machine.charge_elementwise(n)
    prev = machine.execute("permute", srcs, next_[srcs], n, -1)
    machine.charge_permute(n)
    # dist[i]: current distance from i to next_[i] along the original list
    dist = np.ones(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    sentinel = np.int64(n)  # larger than any priority
    rounds: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    while True:
        interior = alive & (prev >= 0) & (next_ >= 0)
        machine.charge_elementwise(n)
        if not interior.any():
            break
        # neighbours' priorities, with non-interior neighbours masked to
        # +inf so every maximal run of interior nodes keeps a local min
        safe_prev = np.where(interior, prev, 0)
        safe_next = np.where(interior, next_, 0)
        machine.charge_gather(n, unique=True)
        pri_prev = np.where(interior & interior[safe_prev],
                            pri[safe_prev], sentinel)
        machine.charge_gather(n, unique=True)
        pri_next = np.where(interior & interior[safe_next],
                            pri[safe_next], sentinel)
        machine.charge_elementwise(n)
        splice = interior & (pri < pri_prev) & (pri < pri_next)
        machine.charge_elementwise(n)
        nodes = np.flatnonzero(splice).astype(np.int64)
        parents = prev[nodes]
        successors = next_[nodes]
        # record dist(parent -> node) before folding for the replay
        machine.charge_gather(n, unique=True)
        parent_dist = dist[parents].copy()
        rounds.append((nodes, parents, parent_dist))
        machine.charge_elementwise(n)
        dist[parents] += dist[nodes]
        machine.charge_permute(n)
        next_[parents] = successors
        machine.charge_permute(n)
        prev[successors] = parents
        alive[nodes] = False
        prev[nodes] = -1
        next_[nodes] = -1
        machine.charge_permute(n)
    # only the head (and, for n >= 2, the tail) survive contraction
    ranks[head] = 0
    if n >= 2:
        tail = int(next_[head])
        machine.charge_elementwise(n)
        ranks[tail] = dist[head]
    # replay the rounds backwards: a spliced node sits parent_dist past
    # its parent, whose rank is already known
    for nodes, parents, parent_dist in reversed(rounds):
        machine.charge_gather(n, unique=True)
        machine.charge_elementwise(n)
        machine.charge_permute(n)
        ranks[nodes] = ranks[parents] + parent_dist
    return ContractionResult(ranks=ranks, rounds=len(rounds))
