"""Biconnected components (Tarjan–Vishkin) — Table 1's last graph row.

The paper lists biconnected components at O(lg² n) EREW / O(lg n) CRCW /
O(lg n) scan, citing its companion work.  The Tarjan–Vishkin reduction
maps cleanly onto the substrates built here:

1. a **spanning tree** (the MST machinery with edge ids as weights);
2. **root** it and compute *preorder* and *subtree size* with treefix
   operations (Euler tour + scans, O(lg n));
3. per-vertex **low/high** — the extreme preorder reachable through one
   non-tree edge from anywhere in the subtree — via one segmented
   min/max-distribute over the graph representation followed by a
   *subtree min/max* (the doubling table of :mod:`repro.algorithms.treefix`);
4. build the **auxiliary graph** on the tree edges:

   * a non-tree edge between unrelated vertices joins the two tree edges
     entering them;
   * a tree edge (w, v) joins its parent edge (p(w), w) when some
     non-tree edge escapes w's subtree from inside v's;

5. the **connected components** of the auxiliary graph are the
   biconnectivity classes; non-tree edges inherit the class of the tree
   edge entering their deeper endpoint.

Articulation points and bridges fall out of the labeling: a vertex whose
incident edges span two or more blocks is a cut vertex, and a block
containing a single edge is a bridge.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import segmented
from ..core.vector import Vector
from ..graph.build import from_edges
from ..machine.model import Machine
from .connected_components import connected_components
from .mst import minimum_spanning_tree
from .treefix import build_rooted_tree, root_tree_edges

__all__ = ["biconnected_components", "BiconnectedResult"]


@dataclass
class BiconnectedResult:
    """Biconnectivity decomposition of a connected graph.

    ``edge_labels[e]`` — block id of input edge ``e`` (ids are arbitrary
    but equal within a block); ``articulation_points`` — sorted vertex
    ids; ``bridges`` — sorted edge ids whose block is a single edge.
    """

    edge_labels: np.ndarray
    num_components: int
    articulation_points: np.ndarray
    bridges: np.ndarray


def biconnected_components(machine: Machine, n_vertices: int, edges
                           ) -> BiconnectedResult:
    """Decompose a *connected* undirected graph into biconnected
    components (see module docstring for the construction)."""
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    m_edges = len(edges)
    if n_vertices < 2 or m_edges == 0:
        raise ValueError("need a connected graph on >= 2 vertices")

    # --- 1. spanning tree -------------------------------------------- #
    mst = minimum_spanning_tree(machine, n_vertices,
                                edges, np.arange(m_edges, dtype=np.int64))
    if len(mst.edge_ids) != n_vertices - 1:
        raise ValueError("graph is not connected")
    tree_ids = mst.edge_ids
    is_tree_edge = np.zeros(m_edges, dtype=bool)
    is_tree_edge[tree_ids] = True

    # --- 2. root the tree, preorder + subtree sizes ------------------- #
    parent = root_tree_edges(machine, n_vertices, edges[tree_ids], root=0)
    tree = build_rooted_tree(machine, parent)
    pre = tree.preorder()
    size = tree.subtree_sizes()
    root = tree.root

    # --- 3. low/high via the graph representation + subtree extremes -- #
    g = from_edges(machine, n_vertices, edges)
    seg_id = np.cumsum(g.seg_flags.data) - 1
    slot_vertex = g.vertex_reps[seg_id]
    eid = g.slot_data["edge_id"].data
    machine.charge_elementwise(g.num_slots)
    nontree_slot = ~is_tree_edge[eid]
    pre_self = pre[slot_vertex]
    pre_other = pre[slot_vertex[g.cross_pointers.data]]
    hi_id = np.iinfo(np.int64).min
    lo_id = np.iinfo(np.int64).max
    lo_vals = Vector(machine, np.where(nontree_slot, pre_other, lo_id))
    hi_vals = Vector(machine, np.where(nontree_slot, pre_other, hi_id))
    lo_per_vertex = g.slots_to_vertex(
        segmented.seg_min_distribute(lo_vals, g.seg_flags)).data
    hi_per_vertex = g.slots_to_vertex(
        segmented.seg_max_distribute(hi_vals, g.seg_flags)).data
    machine.charge_elementwise(n_vertices)
    lo_local = np.minimum(pre, lo_per_vertex)
    hi_local = np.maximum(pre, hi_per_vertex)
    low = tree.subtree_min(lo_local)
    high = tree.subtree_max(hi_local)

    # --- 4. auxiliary graph on the tree edges (vertex v stands for the
    #        tree edge entering v) ------------------------------------- #
    machine.charge_elementwise(m_edges)
    u, w = edges[:, 0], edges[:, 1]
    u_anc_w = (pre[u] <= pre[w]) & (pre[w] < pre[u] + size[u])
    w_anc_u = (pre[w] <= pre[u]) & (pre[u] < pre[w] + size[w])
    unrelated = ~(u_anc_w | w_anc_u) & ~is_tree_edge
    aux_a = u[unrelated]
    aux_b = w[unrelated]

    machine.charge_elementwise(n_vertices)
    v_ids = np.arange(n_vertices)
    nonroot = v_ids != root
    wp = parent
    escapes = nonroot & (wp != root) & (
        (low < pre[wp]) | (high >= pre[wp] + size[wp]))
    rule2_a = v_ids[escapes]
    rule2_b = wp[escapes]

    aux_edges = np.concatenate((
        np.column_stack((aux_a, aux_b)),
        np.column_stack((rule2_a, rule2_b)),
    )) if len(aux_a) + len(rule2_a) else np.empty((0, 2), dtype=np.int64)
    aux_edges = aux_edges[aux_edges[:, 0] != aux_edges[:, 1]]
    if len(aux_edges):
        aux_edges = np.unique(np.sort(aux_edges, axis=1), axis=0)

    cc = connected_components(machine, n_vertices, aux_edges)
    block_of_vertex = cc.labels  # block of the tree edge entering v

    # --- 5. label every input edge ------------------------------------ #
    machine.charge_elementwise(m_edges)
    deeper = np.where(u_anc_w, w, np.where(w_anc_u, u, u))
    tree_child = np.where(parent[u] == w, u, w)  # for tree edges
    carrier = np.where(is_tree_edge, tree_child, deeper)
    edge_labels = block_of_vertex[carrier]

    # --- derived structure --------------------------------------------- #
    blocks_at_vertex: dict[int, set[int]] = {v: set() for v in range(n_vertices)}
    for e in range(m_edges):
        blocks_at_vertex[int(u[e])].add(int(edge_labels[e]))
        blocks_at_vertex[int(w[e])].add(int(edge_labels[e]))
    articulation = np.array(sorted(
        v for v, bl in blocks_at_vertex.items() if len(bl) >= 2), dtype=np.int64)
    labels_unique, counts = np.unique(edge_labels, return_counts=True)
    single = set(labels_unique[counts == 1].tolist())
    bridges = np.array(sorted(
        e for e in range(m_edges) if int(edge_labels[e]) in single),
        dtype=np.int64)

    return BiconnectedResult(
        edge_labels=edge_labels,
        num_components=int(len(labels_unique)),
        articulation_points=articulation,
        bridges=bridges,
    )
