"""Closest pair of points in the plane, O(lg n) program steps (Table 1).

The classic divide-and-conquer, executed breadth-first over segments so
that every level of the recursion is a constant number of scan-model
primitives on the whole point set:

* **downward** (lg n levels): split every segment at its x-median, exactly
  as the k-d tree build does, maintaining a parallel y-ordering; each
  level records the segmentation and the per-element dividing abscissa.
* **at the bottom**: segments hold <= 3 points; the two y-neighbor
  comparisons cover all pairs.
* **upward** (lg n levels): each merged segment takes delta = the min of
  its halves, extracts the strip of points within delta of the divider
  (one pack, and the points are already y-sorted), and lets every strip
  point probe its next 7 strip neighbors — exclusive shifted gathers —
  before one segmented min-distribute closes the level.

Squared distances keep the arithmetic exact on integer inputs.  An EREW
P-RAM pays O(lg n) per level for the same scans: Table 1's O(lg² n).
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import ceil_log2
from ..core import ops, segmented
from ..core.vector import Vector
from ..machine.model import Machine
from .kd_tree import _sort_order

__all__ = ["closest_pair", "ClosestPairResult"]

_INF = np.iinfo(np.int64).max


@dataclass
class ClosestPairResult:
    """``distance_sq`` — squared distance of the closest pair;
    ``pair`` — the two input indices achieving it."""

    distance_sq: int
    pair: tuple[int, int]


def closest_pair(machine: Machine, points, *,
                 max_iterations: int | None = None) -> ClosestPairResult:
    """Closest pair among integer points (``(n, 2)``, n >= 2).

    ``max_iterations`` bounds the downward median-split sweep; every level
    halves the largest segment, so the default ``⌈lg n⌉ + 2`` is reached
    only if the split stops making progress (e.g. corrupted segment
    descriptors under fault injection), in which case a diagnostic
    :class:`RuntimeError` is raised instead of looping forever.
    """
    pts = np.asarray(points, dtype=np.int64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError(f"points must have shape (n, 2), got {pts.shape}")
    n = len(pts)
    if n < 2:
        raise ValueError("need at least two points")
    if max_iterations is None:
        max_iterations = ceil_log2(n) + 2
    m = machine

    x_ids = Vector(m, _sort_order(m, pts[:, 0]))
    y_ids = Vector(m, _sort_order(m, pts[:, 1]))
    sf0 = np.zeros(n, dtype=bool)
    sf0[0] = True
    flags_x = Vector(m, sf0)
    flags_y = Vector(m, sf0.copy())

    # ---- downward sweep: record each level's y-segmentation + divider ---- #
    level_sfy: list[np.ndarray] = []
    level_mid: list[np.ndarray] = []  # per y-position dividing x
    iteration = 0
    while True:
        sizes = np.diff(np.append(np.flatnonzero(flags_x.data), n))
        if (sizes <= 3).all():
            break
        if iteration >= max_iterations:
            big = sizes[sizes > 3]
            raise RuntimeError(
                f"closest_pair median split made no progress after "
                f"{max_iterations} levels: {len(big)} segment(s) larger "
                f"than 3 points remain (largest has {int(sizes.max())} of "
                f"{n} points)")
        iteration += 1
        # the divider of each segment is the x of the first upper-half point
        pos = segmented.seg_index(flags_x)
        length = segmented.seg_plus_distribute(
            Vector(m, np.ones(n, dtype=np.int64)), flags_x)
        half = (length + 1) // 2
        side = pos >= half
        m.charge_elementwise(n)
        xs_in_order = Vector(m, pts[x_ids.data, 0])
        first_upper = side & (pos == half)
        mid = segmented.seg_max_distribute(
            first_upper.where(xs_in_order, np.iinfo(np.int64).min), flags_x)

        level_sfy.append(flags_y.data.copy())
        mid_by_id = mid.permute(x_ids)
        mid_y_order = mid_by_id.gather(y_ids)
        level_mid.append(mid_y_order.data.copy())

        side_by_id = side.astype(np.int64).permute(x_ids)
        side_y = side_by_id.gather(y_ids) > 0

        x_ids = segmented.seg_split(x_ids, side, flags_x)
        flags_x = _split_flags(side, flags_x)
        y_ids = segmented.seg_split(y_ids, side_y, flags_y)
        flags_y = _split_flags(side_y, flags_y)

    # ---- bottom: pairwise distances within <= 3-point segments ----------- #
    ydata = y_ids.data
    ypts = pts[ydata]
    seg_id_y = np.cumsum(flags_y.data) - 1
    delta = Vector(m, np.full(n, _INF, dtype=np.int64))
    best_pair = np.full((n, 2), -1, dtype=np.int64)
    delta_arr, best_pair = _probe_neighbors(
        m, ypts, ydata, seg_id_y, delta.data.copy(), best_pair, probes=2)

    # ---- upward sweep ----------------------------------------------------- #
    for sfy, mid in zip(reversed(level_sfy), reversed(level_mid)):
        parent_sf = Vector(m, sfy)
        parent_seg = np.cumsum(sfy) - 1
        # the strip half-width: the parent segment's best delta so far (one
        # segmented min-distribute; per-element deltas stay intact for the
        # pair bookkeeping below)
        seg_delta = segmented.seg_min_distribute(
            Vector(m, delta_arr), parent_sf).data
        # strip extraction (y order is preserved by construction)
        m.charge_elementwise(n)
        finite = seg_delta < _INF
        within = np.zeros(n, dtype=bool)
        dx = np.abs(ypts[:, 0] - mid)
        within[finite] = dx[finite] * dx[finite] < seg_delta[finite]
        within |= ~finite  # with no candidate distance yet, probe everything
        strip = Vector(m, within)
        packed_pos = ops.pack(Vector(m, np.arange(n, dtype=np.int64)), strip)
        sp = packed_pos.data
        if len(sp):
            s_pts = ypts[sp]
            s_ids = ydata[sp]
            s_seg = parent_seg[sp]
            s_delta = np.full(len(sp), _INF, dtype=np.int64)
            s_pairs = np.full((len(sp), 2), -1, dtype=np.int64)
            s_delta, s_pairs = _probe_neighbors(
                m, s_pts, s_ids, s_seg, s_delta, s_pairs, probes=7)
            # scatter the strip minima back (one permute)
            m.charge_permute(n)
            scat = np.full(n, _INF, dtype=np.int64)
            scat[sp] = s_delta
            pair_scat = np.full((n, 2), -1, dtype=np.int64)
            pair_scat[sp] = s_pairs
            improved = scat < delta_arr
            best_pair = np.where(improved[:, None], pair_scat, best_pair)
            delta_arr = np.minimum(delta_arr, scat)
        # close the level: every element of a parent segment takes the
        # segment's winning (delta, pair) — one segmented min-distribute
        # with the pair identity riding on the min key
        segmented.seg_min_distribute(Vector(m, delta_arr), parent_sf)
        order = np.lexsort((np.arange(n), delta_arr, parent_seg))
        seg_first = order[np.searchsorted(
            parent_seg[order], np.arange(parent_seg.max() + 1))]
        best_pair = best_pair[seg_first][parent_seg]
        delta_arr = delta_arr[seg_first][parent_seg]

    best = int(delta_arr.min())
    winner = best_pair[int(np.argmin(delta_arr))]
    i, j = int(winner[0]), int(winner[1])
    return ClosestPairResult(distance_sq=best, pair=(min(i, j), max(i, j)))


def _split_flags(side: Vector, sf: Vector) -> Vector:
    m = side.machine
    moved = segmented.seg_split(side.astype(np.int64), side, sf)
    m.charge_permute(len(side))
    m.charge_elementwise(len(side))
    lab = moved.data
    nf = np.empty(len(lab), dtype=bool)
    if len(lab):
        nf[0] = True
        nf[1:] = lab[1:] != lab[:-1]
    return Vector(m, nf | sf.data)


def _probe_neighbors(machine: Machine, p: np.ndarray, ids: np.ndarray,
                     seg: np.ndarray, delta: np.ndarray, pairs: np.ndarray,
                     probes: int) -> tuple[np.ndarray, np.ndarray]:
    """Each element probes its next ``probes`` same-segment neighbors in
    y-order; returns the per-element minimum squared distance and pair.
    Each probe is one shifted exclusive gather plus elementwise steps."""
    k = len(p)
    for j in range(1, probes + 1):
        if j >= k:
            break
        machine.counter.charge("gather", machine._block(k))
        machine.charge_elementwise(k)
        tgt = np.arange(k) + j
        valid = (tgt < k)
        tgt = np.minimum(tgt, k - 1)
        same = valid & (seg[tgt] == seg)
        d = (p[:, 0] - p[tgt, 0]) ** 2 + (p[:, 1] - p[tgt, 1]) ** 2
        cand = np.where(same, d, _INF)
        better = cand < delta
        pairs[better] = np.column_stack((ids[better], ids[tgt[better]]))
        delta = np.minimum(delta, cand)
    return delta, pairs
