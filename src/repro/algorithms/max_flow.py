"""Maximum flow on the scan model (Table 1's last row).

Table 1 lists maximum flow at O(n² lg n) on the pure P-RAMs and O(n²) on
the scan model: whatever the pulse structure of the flow algorithm, each
pulse's vertex-local work — finding admissible arcs, summing arriving
flow, taking the minimum neighbor height — is a segmented operation, so
scans turn every O(lg n) pulse into O(1).

This module implements Goldberg–Tarjan **push–relabel** with that pulse
structure, on the segmented graph representation:

* each arc of the (symmetric) residual network is one slot, and its
  reverse arc is the slot's cross-pointer, so skew symmetry is a permute;
* a pulse lets every active vertex either push its excess along one
  admissible arc (lowest arc id — one segmented min-distribute picks it)
  or relabel to ``1 + min`` over residual arcs (another distribute);
* the flow arriving at each vertex is collected by permuting the push
  amounts across the cross-pointers and one segmented +-distribute.

Every pulse is O(1) program steps on the scan model and O(lg n) on EREW.
Undirected capacities (each edge usable in both directions) keep the
representation symmetric; the result is validated against a serial Dinic
on the equivalent directed network.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import segmented
from ..core.vector import Vector
from ..graph.build import from_edges
from ..machine.model import Machine

__all__ = ["max_flow", "MaxFlowResult"]

_INF = np.iinfo(np.int64).max // 4


@dataclass
class MaxFlowResult:
    """``value`` — the maximum s-t flow; ``pulses`` — push/relabel rounds."""

    value: int
    pulses: int


def max_flow(machine: Machine, n_vertices: int, edges, capacities,
             source: int, sink: int, *, max_pulses: int | None = None
             ) -> MaxFlowResult:
    """Maximum flow between ``source`` and ``sink`` where each undirected
    edge may carry up to its capacity in either direction."""
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    capacities = np.asarray(capacities, dtype=np.int64)
    if len(capacities) != len(edges):
        raise ValueError("capacities must match edges")
    if (capacities < 0).any():
        raise ValueError("capacities must be non-negative")
    if source == sink:
        raise ValueError("source and sink must differ")
    n = n_vertices

    g = from_edges(machine, n, edges, weights=capacities)
    ns = g.num_slots
    sf = g.seg_flags
    cp = g.cross_pointers.data
    seg_id = np.cumsum(sf.data) - 1
    slot_vertex = g.vertex_reps[seg_id]  # dense ids == original here
    other_vertex = slot_vertex[cp]
    cap = g.slot_data["weight"].data.astype(np.int64)

    # slot s carries the arc slot_vertex[s] -> other_vertex[s]; skew
    # symmetry: flow[s] == -flow[cp[s]]
    flow = np.zeros(ns, dtype=np.int64)
    height = np.zeros(n, dtype=np.int64)
    height[source] = n
    excess = np.zeros(n, dtype=np.int64)

    # saturate the source's arcs (one elementwise step + one distribute)
    machine.charge_elementwise(ns)
    src_slots = slot_vertex == source
    flow[src_slots] = cap[src_slots]
    flow[cp[src_slots]] = -cap[src_slots]
    np.add.at(excess, other_vertex[src_slots], cap[src_slots])
    machine.charge_scan(ns)

    if max_pulses is None:
        max_pulses = 40 * n * n + 200
    pulses = 0
    slot_ids = np.arange(ns, dtype=np.int64)

    while True:
        active = (excess > 0)
        active[source] = active[sink] = False
        if not active.any():
            break
        if pulses >= max_pulses:
            raise RuntimeError(f"push-relabel exceeded {max_pulses} pulses")
        pulses += 1

        # --- per-slot state (a constant number of parallel steps) -------- #
        machine.charge_elementwise(ns)
        residual = cap - flow
        active_slot = active[slot_vertex]
        admissible = active_slot & (residual > 0) & (
            height[slot_vertex] == height[other_vertex] + 1)

        # each active vertex picks its lowest admissible slot
        machine.charge_elementwise(ns)
        pick_key = np.where(admissible, slot_ids, _INF)
        best = segmented.seg_min_distribute(
            Vector(machine, pick_key), sf).data
        chosen = admissible & (slot_ids == best)

        # push min(excess, residual) along the chosen arcs (elementwise,
        # then the arriving amounts are summed per vertex with a permute
        # across the cross-pointers + one segmented distribute)
        machine.charge_elementwise(ns)
        amount = np.where(chosen, np.minimum(excess[slot_vertex], residual), 0)
        flow = flow + amount
        # skew symmetry (a push and a counter-push on the same edge cannot
        # both be admissible, so the updates never collide): one permute
        machine.counter.charge("permute", machine._block(ns))
        pushed = chosen
        flow[cp[pushed]] = -flow[pushed]

        machine.charge_scan(ns)
        np.add.at(excess, slot_vertex[pushed], -amount[pushed])
        np.add.at(excess, other_vertex[pushed], amount[pushed])

        # relabel the active vertices that had nothing admissible:
        # height <- 1 + min over residual arcs (one masked distribute)
        machine.charge_elementwise(ns)
        vertex_pushed = np.zeros(n, dtype=bool)
        vertex_pushed[slot_vertex[pushed]] = True
        need_relabel = active & ~vertex_pushed
        relabel_key = np.where(residual > 0, height[other_vertex], _INF)
        min_h = segmented.seg_min_distribute(
            Vector(machine, relabel_key), sf).data
        per_vertex_min = np.full(n, _INF, dtype=np.int64)
        per_vertex_min[slot_vertex[sf.data]] = min_h[sf.data]
        machine.charge_elementwise(n)
        can = need_relabel & (per_vertex_min < _INF)
        height[can] = per_vertex_min[can] + 1
        # a trapped vertex (no residual arcs at all) can never push again
        stuck = need_relabel & ~can
        excess[stuck] = 0

    return MaxFlowResult(value=int(excess[sink]), pulses=pulses)
