"""The halving merge (Section 2.5.1, Figure 12).

Merge two sorted vectors by recursing on their even-positioned halves and
then *even-inserting* the remaining elements:

1. pack out the elements at even positions of each vector (a load-balancing
   pack) and merge them recursively;
2. place each unmerged element directly after its original predecessor in
   the merged-halves vector (a processor allocation, Section 2.4), giving
   the *near-merge* vector;
3. the near-merge is sorted up to disjoint single rotations, which two
   inclusive scans repair::

       head-copy <- max(max-scan(near-merge), near-merge)
       result    <- min(min-backscan(near-merge), head-copy)

Each level is a constant number of primitives on a vector that halves in
size, so with ``p`` processors the step complexity is O(n/p + lg n) — the
paper's original algorithmic contribution, optimal for ``p < n / lg n``
(Table 5).

Internally the two inputs are fused into unique *keys* (``2·value`` for A,
``2·value + 1`` for B) so the merge is stable, the origin flag of every
output element is recoverable from the key's low bit (the paper's
merge-flag vector), and the rotation repair acts on totally ordered keys.
All communication is exclusive: the even-insertion routes every element —
merged evens and their odd successors — through one global permute.
"""
from __future__ import annotations

import numpy as np

from ..core import ops, scans
from ..core.vector import Vector
from ..observe.spans import span

__all__ = ["halving_merge", "near_merge_fix"]


def near_merge_fix(near: Vector) -> Vector:
    """Repair a near-merge vector (sorted up to disjoint single rotations)
    with the paper's two-scan ``x-near-merge``: the first inclusive scan
    copies each block head over its block, the second slides the block down
    by one."""
    head_copy = scans.max_scan(near).maximum(near)  # inclusive max-scan
    return scans.back_min_scan(near).minimum(head_copy)


def _check_sorted_nonneg(v: Vector, name: str) -> None:
    d = v.data
    if not np.issubdtype(d.dtype, np.integer):
        raise TypeError(f"{name} must be an integer vector")
    if len(d) and d.min() < 0:
        raise ValueError(f"{name} must be non-negative (bias-shift first)")
    if len(d) > 1 and (d[1:] < d[:-1]).any():
        raise ValueError(f"{name} must be sorted")


def halving_merge(a: Vector, b: Vector) -> tuple[Vector, Vector]:
    """Merge sorted non-negative integer vectors ``a`` and ``b``.

    Returns ``(merged, merge_flags)`` where ``merge_flags[i]`` is ``True``
    when ``merged[i]`` came from ``b`` — the paper's merge-flag vector,
    which "both uniquely specifies how the elements should be merged and
    specifies in which position each element belongs".  Stable: on equal
    keys, ``a``'s elements come first.
    """
    _check_sorted_nonneg(a, "a")
    _check_sorted_nonneg(b, "b")
    ka = a * 2
    kb = b * 2 + 1
    merged_keys = _merge_keys(ka, kb)
    flags = (merged_keys & 1) > 0
    values = merged_keys >> 1
    return values, flags


def _merge_keys(ka: Vector, kb: Vector) -> Vector:
    m = ka.machine
    n, k = len(ka), len(kb)
    if n == 0:
        return kb
    if k == 0:
        return ka
    if n == 1 or k == 1:
        return _base_merge(ka, kb)

    # 1. recurse on the elements at even positions (a pack each)
    with span(f"halve[n={n + k}]"):
        even_a = (m.arange(n) % 2) == 0
        even_b = (m.arange(k) % 2) == 0
        merged = _merge_keys(ops.pack(ka, even_a), ops.pack(kb, even_b))

    # 2. even-insertion.  A merged element of rank r within its source has
    #    an unmerged successor exactly when the source held an element at
    #    position 2r + 1, i.e. when r < floor(len/2) — pure arithmetic, no
    #    communication.
    mk = len(merged)
    from_b = (merged & 1) > 0
    rank_b = ops.enumerate_(from_b)
    rank_a = ops.enumerate_(~from_b)
    has_succ = from_b.where(rank_b < k // 2, rank_a < n // 2)
    counts = has_succ.astype(np.int64) + 1
    seg_flags, hpointers = ops.allocate(m, counts)
    total = len(seg_flags)  # == n + k

    # each odd (unmerged) element learns where its predecessor landed: the
    # merged position of source-rank r is read off a packed position table
    # (all gathers below use distinct indices — exclusive reads)
    odd_a = ops.pack(ka, ~even_a)
    odd_b = ops.pack(kb, ~even_b)
    pos_a = ops.pack(m.arange(mk), ~from_b)  # merged index of A-rank r
    pos_b = ops.pack(m.arange(mk), from_b)
    pred_a = pos_a.gather(m.arange(len(odd_a)))
    pred_b = pos_b.gather(m.arange(len(odd_b)))
    tgt_a = hpointers.gather(pred_a) + 1
    tgt_b = hpointers.gather(pred_b) + 1

    # one global permute routes evens to their segment heads and odds to
    # the cell just after their predecessor — a bijection onto [0, total)
    values = ops.concat(merged, ops.concat(odd_a, odd_b))
    targets = ops.concat(hpointers, ops.concat(tgt_a, tgt_b))
    near = values.permute(targets, length=total)

    # 3. repair the rotations
    return near_merge_fix(near)


def _base_merge(ka: Vector, kb: Vector) -> Vector:
    """Merge when one side has a single element: O(1) primitives."""
    m = ka.machine
    n, k = len(ka), len(kb)
    if n > 1:  # flip so the singleton is ka
        ka, kb = kb, ka
        n, k = k, n
    lone = ka.first()
    below = kb < lone
    pos_lone = scans.plus_reduce(below.astype(np.int64))
    pos_b = m.arange(k) + (~below).astype(np.int64)
    index = ops.concat(m.vector([pos_lone]), pos_b)
    return ops.concat(ka, kb).permute(index)
