"""Connected components in O(lg n) program steps (Table 1).

Runs the same random-mate star-merge engine as the minimum spanning tree —
with the edge weight replaced by the edge id, any incident edge will do —
recording the merge forest, then resolves every original vertex's component
label with one Euler-tour rootfix (:mod:`repro.algorithms.forest`).  On the
scan model both phases are O(lg n) program steps; under EREW charging the
same code is Θ(lg² n), the paper's advertised gap.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import ceil_log2
from ..core import segmented
from ..core.vector import Vector
from ..graph.build import from_edges
from ..graph.star_merge import star_merge
from ..machine.model import Machine
from .forest import rootfix

__all__ = ["connected_components", "ComponentsResult"]


@dataclass
class ComponentsResult:
    """Labels and statistics from :func:`connected_components`.

    ``labels[v]`` is the component representative (an original vertex id) of
    vertex ``v``; two vertices are connected iff their labels agree.
    """

    labels: np.ndarray
    num_components: int
    rounds: int


def connected_components(machine: Machine, n_vertices: int, edges,
                         *, max_rounds: int | None = None) -> ComponentsResult:
    """Label the connected components of an undirected graph.

    Isolated vertices are allowed (they label themselves); self-loops are
    not (the representation cannot hold them and they never affect
    connectivity).
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    parent = np.arange(n_vertices, dtype=np.int64)
    if len(edges) == 0:
        return ComponentsResult(labels=parent, num_components=n_vertices, rounds=0)

    # compact away isolated vertices so every represented vertex has degree
    # >= 1 (one enumerate-shaped step)
    present = np.zeros(n_vertices, dtype=bool)
    present[edges.ravel()] = True
    machine.charge_scan(n_vertices)
    remap = np.cumsum(present) - 1
    compact_edges = remap[edges]
    originals = np.flatnonzero(present)

    g = from_edges(machine, int(present.sum()), compact_edges)
    g.vertex_reps = originals[g.vertex_reps]
    if max_rounds is None:
        max_rounds = 12 * (ceil_log2(max(n_vertices, 2)) + 2) + 20

    rounds = 0
    while g.num_slots > 0:
        if rounds >= max_rounds:
            raise RuntimeError(f"components did not contract in {max_rounds} rounds")
        rounds += 1
        nv = g.num_vertices
        machine.charge_elementwise(nv)
        coin_parent = Vector(machine, machine.rng.integers(0, 2, size=nv).astype(bool))

        # any incident edge will do: take the minimum edge id for uniqueness
        eid = g.slot_data["edge_id"]
        mn = segmented.seg_min_distribute(eid, g.seg_flags)
        candidate = eid == mn
        parent_slot = g.vertex_to_slots(coin_parent)
        other_is_parent = parent_slot.permute(g.cross_pointers)
        child_star = candidate & ~parent_slot & other_is_parent
        has_star = g.slots_to_vertex(
            segmented.seg_or_distribute(child_star, g.seg_flags))
        merging_parent = coin_parent | ~has_star
        if not child_star.data.any():
            continue
        star = child_star | child_star.permute(g.cross_pointers)
        result = star_merge(g, star, merging_parent, validate=False)
        for child_rep, parent_rep in result.merged_pairs:
            parent[child_rep] = parent_rep
        g = result.graph

    labels = rootfix(machine, parent)
    return ComponentsResult(
        labels=labels,
        num_components=int(len(np.unique(labels))),
        rounds=rounds,
    )
