"""Planar convex hull by segmented quickhull (Table 1, O(lg n) expected).

The divide-and-conquer recursion runs *breadth-first over segments*: every
live segment holds the candidate points strictly outside one directed hull
chord ``a -> b``, with the chord endpoints distributed across the segment.
One round, for all segments at once and in O(1) program steps each:

1. a segmented max-distribute finds each segment's farthest point ``f``
   (a hull vertex — reported immediately);
2. each candidate classifies itself: outside ``a -> f``, outside
   ``f -> b``, or inside the triangle (discarded);
3. a segmented three-way split, one pack to drop the discards, and new
   segment flags where the class changes.

Random point sets discard a constant fraction per round, giving the
expected O(lg n) rounds (adversarial inputs degrade to O(n), as quickhull
does).  Integer coordinates keep every orientation test exact.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import ops, scans, segmented
from ..core.vector import Vector
from ..machine.model import Machine

__all__ = ["convex_hull", "HullResult"]


@dataclass
class HullResult:
    """``hull_indices`` — indices (into the input) of hull vertices in
    counter-clockwise order; ``rounds`` — quickhull rounds."""

    hull_indices: np.ndarray
    rounds: int


def _cross(ax, ay, bx, by, px, py):
    """Orientation of p relative to the directed line a -> b (> 0: left)."""
    return (bx - ax) * (py - ay) - (by - ay) * (px - ax)


def convex_hull(machine: Machine, points, *, max_rounds: int | None = None) -> HullResult:
    """Convex hull of integer points (``(n, 2)`` array-like)."""
    pts = np.asarray(points, dtype=np.int64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError(f"points must have shape (n, 2), got {pts.shape}")
    n = len(pts)
    if n == 0:
        return HullResult(hull_indices=np.empty(0, dtype=np.int64), rounds=0)
    m = machine
    x = Vector(m, pts[:, 0])
    y = Vector(m, pts[:, 1])
    idx = m.arange(n)

    # extreme points in lexicographic (x, y) order: two distributes
    m.charge_elementwise(n)
    lex = pts[:, 0] * (4 * (np.abs(pts[:, 1]).max() + 1)) + pts[:, 1]
    lo = int(np.argmin(lex))
    hi = int(np.argmax(lex))
    scans.min_distribute(Vector(m, lex))
    scans.max_distribute(Vector(m, lex))
    if lo == hi:  # all points identical
        return HullResult(hull_indices=np.array([lo], dtype=np.int64), rounds=0)

    ax0, ay0 = pts[lo]
    bx0, by0 = pts[hi]
    m.charge_elementwise(n)
    side = _cross(ax0, ay0, bx0, by0, pts[:, 0], pts[:, 1])
    upper = side > 0
    lower = side < 0

    # working vectors: candidates of the upper chord then the lower chord
    cand = np.flatnonzero(upper | lower)
    order = np.concatenate((cand[upper[cand]], cand[lower[cand]]))
    m.charge_permute(n)
    sf = np.zeros(len(order), dtype=bool)
    nu = int(upper.sum())
    if len(order):
        sf[0] = True
        if 0 < nu < len(order):
            sf[nu] = True
    seg_a = np.where(np.arange(len(order)) < nu, lo, hi)
    seg_b = np.where(np.arange(len(order)) < nu, hi, lo)

    cx = Vector(m, pts[order, 0])
    cy = Vector(m, pts[order, 1])
    cid = Vector(m, order.astype(np.int64))
    vax = Vector(m, pts[seg_a, 0]) if len(order) else Vector(m, np.empty(0, dtype=np.int64))
    vay = Vector(m, pts[seg_a, 1]) if len(order) else vax
    vbx = Vector(m, pts[seg_b, 0]) if len(order) else vax
    vby = Vector(m, pts[seg_b, 1]) if len(order) else vax
    flags = Vector(m, sf)

    hull: list[int] = [lo, hi]
    if max_rounds is None:
        max_rounds = n + 8
    rounds = 0
    while len(cx) > 0:
        if rounds >= max_rounds:
            raise RuntimeError(f"quickhull exceeded {max_rounds} rounds")
        rounds += 1
        k = len(cx)
        # farthest point from each segment's chord, uniquely keyed
        m.charge_elementwise(k)
        dist = _cross(vax.data, vay.data, vbx.data, vby.data, cx.data, cy.data)
        key = Vector(m, dist * n + (n - 1 - cid.data))
        best = segmented.seg_max_distribute(key, flags)
        holder = key == best
        hull.extend(ops.pack(cid, holder).data.tolist())

        # distribute the farthest point's coordinates over its segment
        fx = segmented.seg_max_distribute(
            holder.where(cx, np.iinfo(np.int64).min), flags)
        fy = segmented.seg_max_distribute(
            holder.where(cy, np.iinfo(np.int64).min), flags)

        # classify: strictly outside a->f, strictly outside f->b, or gone
        m.charge_elementwise(k)
        m.charge_elementwise(k)
        s1 = _cross(vax.data, vay.data, fx.data, fy.data, cx.data, cy.data) > 0
        s2 = _cross(fx.data, fy.data, vbx.data, vby.data, cx.data, cy.data) > 0
        keep1 = Vector(m, s1 & ~holder.data)
        keep2 = Vector(m, s2 & ~holder.data & ~s1)
        label = keep1.where(0, keep2.where(1, 2)).astype(np.int64)

        # new chord endpoints, chosen per element before the reshuffle
        nax = keep1.where(vax, fx)
        nay = keep1.where(vay, fy)
        nbx = keep1.where(fx, vbx)
        nby = keep1.where(fy, vby)

        perm = _split3_index(label, flags)
        survivors = (keep1 | keep2).permute(perm)
        moved = [v.permute(perm) for v in (cx, cy, cid, nax, nay, nbx, nby, label)]
        cx, cy, cid, vax, vay, vbx, vby, labelv = \
            [ops.pack(v, survivors) for v in moved]

        if len(cx):
            # a new segment starts where the (segment, class) pair changes
            old_seg = segmented.segment_ids(flags).permute(perm)
            seg_packed = ops.pack(old_seg, survivors)
            m.charge_permute(len(cx))
            m.charge_elementwise(len(cx))
            a = seg_packed.data * 4 + labelv.data
            nf = np.empty(len(a), dtype=bool)
            nf[0] = True
            nf[1:] = a[1:] != a[:-1]
            flags = Vector(m, nf)
        else:
            flags = Vector(m, np.empty(0, dtype=bool))

    ordered = _ccw_order(pts, np.array(sorted(set(hull)), dtype=np.int64))
    return HullResult(hull_indices=ordered, rounds=rounds)


def _split3_index(label: Vector, sf: Vector) -> Vector:
    """Permutation of the segmented three-way split by label 0/1/2."""
    m = label.machine
    l0 = label == 0
    l1 = label == 1
    l2 = label == 2
    n0 = segmented.seg_plus_distribute(l0.astype(np.int64), sf)
    n1 = segmented.seg_plus_distribute(l1.astype(np.int64), sf)
    i0 = segmented.seg_enumerate(l0, sf)
    i1 = segmented.seg_enumerate(l1, sf) + n0
    i2 = segmented.seg_enumerate(l2, sf) + n0 + n1
    local = l0.where(i0, l1.where(i1, i2))
    head = segmented.seg_copy(m.arange(len(label)), sf)
    return local + head


def _ccw_order(pts: np.ndarray, hull_idx: np.ndarray) -> np.ndarray:
    """Order hull vertices counter-clockwise (host-side presentation)."""
    hp = pts[hull_idx].astype(np.float64)
    cx, cy = hp.mean(axis=0)
    ang = np.arctan2(hp[:, 1] - cy, hp[:, 0] - cx)
    return hull_idx[np.argsort(ang)]
