"""Treefix operations: per-vertex tree quantities in O(lg n) steps.

The paper points at its companion work [7]: "by keeping trees in a
particular form, we can similarly reduce the step complexity of many tree
operations … by O(lg n)".  The particular form is the **Euler tour** of
the tree laid out as a vector: build the segmented graph of the tree
(radix sort), link each arrival slot to its successor around the tour
(O(1) segmented steps), list-rank the tour (O(lg n) exclusive pointer
jumping), and permute the directed edges into tour order.  Every classic
tree quantity then falls out of one ``+-scan`` over the tour:

* **depth**      — scan of +1 on down edges, −1 on up edges;
* **preorder**   — scan of +1 on down edges;
* **postorder**  — scan of +1 on up edges;
* **subtree size / subtree sum** — difference of the scan between a
  vertex's down-edge and up-edge positions.

All communication is exclusive (the tour successor is a permutation), so
the whole construction is scan-model pure.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import segmented
from ..core.vector import Vector
from ..graph.build import from_edges
from ..machine.model import Machine
from .list_ranking import list_rank

__all__ = ["RootedTree", "build_rooted_tree", "root_tree_edges"]


@dataclass
class RootedTree:
    """A rooted tree prepared for treefix operations.

    ``down_pos[v]`` / ``up_pos[v]`` are the tour positions of the edge
    entering / leaving vertex ``v``'s subtree (−1 for the root, whose
    subtree is the whole tour).  ``down_vertex[p]`` names the vertex whose
    down edge sits at tour position ``p`` (−1 if position ``p`` holds an
    up edge).
    """

    machine: Machine
    n: int
    root: int
    parent: np.ndarray
    tour_len: int
    down_pos: np.ndarray
    up_pos: np.ndarray
    down_vertex: np.ndarray
    is_down: np.ndarray

    # ------------------------------------------------------------------ #

    def _tour_scan(self, per_position: np.ndarray) -> np.ndarray:
        """Exclusive ``+-scan`` over the tour (one primitive scan)."""
        v = Vector(self.machine, per_position)
        from ..core import scans

        return scans.plus_scan(v).data

    def depths(self) -> np.ndarray:
        """Depth of every vertex (root = 0); one scan + O(1) steps."""
        self.machine.charge_elementwise(self.tour_len)
        contrib = np.where(self.is_down, 1, -1).astype(np.int64)
        ex = self._tour_scan(contrib)
        self.machine.counter.charge("gather", self.machine._block(self.n))
        out = np.zeros(self.n, dtype=np.int64)
        nonroot = self.down_pos >= 0
        out[nonroot] = ex[self.down_pos[nonroot]] + 1
        return out

    def preorder(self) -> np.ndarray:
        """Preorder number of every vertex (root = 0)."""
        self.machine.charge_elementwise(self.tour_len)
        ex = self._tour_scan(self.is_down.astype(np.int64))
        self.machine.counter.charge("gather", self.machine._block(self.n))
        out = np.zeros(self.n, dtype=np.int64)
        nonroot = self.down_pos >= 0
        out[nonroot] = ex[self.down_pos[nonroot]] + 1
        return out

    def postorder(self) -> np.ndarray:
        """Postorder number of every vertex (root = n − 1)."""
        self.machine.charge_elementwise(self.tour_len)
        ex = self._tour_scan((~self.is_down).astype(np.int64))
        self.machine.counter.charge("gather", self.machine._block(self.n))
        out = np.full(self.n, self.n - 1, dtype=np.int64)
        nonroot = self.up_pos >= 0
        out[nonroot] = ex[self.up_pos[nonroot]]
        return out

    def subtree_sizes(self) -> np.ndarray:
        """Number of vertices in each vertex's subtree (itself included)."""
        self.machine.charge_elementwise(self.tour_len)
        ex = self._tour_scan(self.is_down.astype(np.int64))
        self.machine.counter.charge("gather", self.machine._block(self.n))
        self.machine.charge_elementwise(self.n)
        out = np.full(self.n, self.n, dtype=np.int64)
        nonroot = self.down_pos >= 0
        # down edges strictly inside (down, up] count the proper subtree
        closing = ex[self.up_pos[nonroot]]
        opening = ex[self.down_pos[nonroot]]
        out[nonroot] = closing - opening
        return out

    def subtree_sums(self, values) -> np.ndarray:
        """Sum of ``values`` over each vertex's subtree (one scan)."""
        values = np.asarray(values, dtype=np.int64)
        if len(values) != self.n:
            raise ValueError(f"expected {self.n} values")
        self.machine.counter.charge("permute", self.machine._block(self.tour_len))
        contrib = np.zeros(self.tour_len, dtype=np.int64)
        mask = self.down_vertex >= 0
        contrib[mask] = values[self.down_vertex[mask]]
        ex = self._tour_scan(contrib)
        self.machine.counter.charge("gather", self.machine._block(self.n))
        self.machine.charge_elementwise(self.n)
        out = np.full(self.n, values.sum(), dtype=np.int64)
        nonroot = self.down_pos >= 0
        # the exclusive scan at the up edge includes every down contribution
        # inside the subtree (the vertex's own down edge included), so the
        # difference against the scan at the down edge is the subtree sum
        out[nonroot] = ex[self.up_pos[nonroot]] - ex[self.down_pos[nonroot]]
        return out

    def subtree_min(self, values) -> np.ndarray:
        """Minimum of ``values`` over each subtree (itself included)."""
        return self._subtree_extreme(values, is_min=True)

    def subtree_max(self, values) -> np.ndarray:
        """Maximum of ``values`` over each subtree (itself included)."""
        return self._subtree_extreme(values, is_min=False)

    def _subtree_extreme(self, values, *, is_min: bool) -> np.ndarray:
        """Subtree min/max by a doubling (sparse) table over the tour.

        Min has no inverse, so the one-scan difference trick of
        ``subtree_sums`` does not apply; instead ``lg L`` rounds of
        shifted elementwise min build windows of every power-of-two width
        (each round an exclusive shifted gather — EREW-legal), and each
        vertex reads the two windows covering its tour interval.  The two
        final reads may collide between nested subtrees, so they are
        charged as a concurrent read where the model has one and as a
        sort-simulated read (an extra ``2 lg n`` factor on that single
        step) otherwise — which leaves the total at O(lg n) on both the
        scan model and EREW.
        """
        from .._util import ceil_log2

        values = np.asarray(values, dtype=np.int64)
        if len(values) != self.n:
            raise ValueError(f"expected {self.n} values")
        if self.n == 1:
            return values.copy()
        ident = np.iinfo(np.int64).max if is_min else np.iinfo(np.int64).min
        combine = np.minimum if is_min else np.maximum
        L = self.tour_len
        m = self.machine

        m.counter.charge("permute", m._block(L))
        base = np.full(L, ident, dtype=np.int64)
        mask = self.down_vertex >= 0
        base[mask] = values[self.down_vertex[mask]]

        tables = [base]
        k_max = ceil_log2(L)
        for k in range(1, k_max + 1):
            m.counter.charge("gather", m._block(L))
            m.charge_elementwise(L)
            prev = tables[-1]
            shift = 1 << (k - 1)
            shifted = np.full(L, ident, dtype=np.int64)
            shifted[: L - shift] = prev[shift:]
            tables.append(combine(prev, shifted))

        # per-vertex range query [down, up] (the root spans the whole tour)
        a = np.where(self.down_pos >= 0, self.down_pos, 0)
        b = np.where(self.up_pos >= 0, self.up_pos, L - 1)
        width = b - a + 1
        k = np.array([int(w).bit_length() - 1 for w in width], dtype=np.int64)
        if self.machine.capabilities.concurrent_read:
            m.counter.charge("gather", m._block(self.n))
            m.counter.charge("gather", m._block(self.n))
        else:
            # simulate the concurrent read by sorting the requests
            for _ in range(2 * ceil_log2(max(self.n, 2))):
                m.charge_elementwise(self.n)
        stacked = np.stack(tables)
        left = stacked[k, a]
        right = stacked[k, b - (1 << k) + 1]
        return combine(left, right)

    def path_sums(self, values) -> np.ndarray:
        """Rootfix: for each vertex, the sum of ``values`` over its
        root-to-vertex path, itself included (one scan)."""
        values = np.asarray(values, dtype=np.int64)
        if len(values) != self.n:
            raise ValueError(f"expected {self.n} values")
        self.machine.counter.charge("permute", self.machine._block(self.tour_len))
        contrib = np.zeros(self.tour_len, dtype=np.int64)
        mask = self.down_vertex >= 0
        contrib[mask] = values[self.down_vertex[mask]]
        up_mask = ~self.is_down
        # leaving a subtree cancels its root's contribution
        up_vertex = np.full(self.tour_len, -1, dtype=np.int64)
        nonroot = np.flatnonzero(self.down_pos >= 0)
        up_vertex[self.up_pos[nonroot]] = nonroot
        contrib[up_mask] = -values[np.maximum(up_vertex[up_mask], 0)]
        ex = self._tour_scan(contrib)
        self.machine.counter.charge("gather", self.machine._block(self.n))
        self.machine.charge_elementwise(self.n)
        # at v's down edge the scan holds the sum over v's strict ancestors
        # *below the root*; add the root's value and v's own
        out = np.empty(self.n, dtype=np.int64)
        nr = self.down_pos >= 0
        out[nr] = (ex[self.down_pos[nr]] + values[np.flatnonzero(nr)]
                   + values[self.root])
        out[self.root] = values[self.root]
        return out


def root_tree_edges(machine: Machine, n: int, edges, root: int = 0) -> np.ndarray:
    """Orient an unrooted tree (given as an edge list) away from ``root``:
    returns the parent array, in O(lg n) program steps.

    The Euler tour needs no orientation to build — an arrival slot is a
    *down* edge exactly when it is visited before its cross-pointer — so
    the tour itself discovers the parents.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if len(edges) != n - 1:
        raise ValueError(f"a tree on {n} vertices has {n - 1} edges, "
                         f"got {len(edges)}")
    if n == 1:
        return np.array([root], dtype=np.int64)
    g = from_edges(machine, n, edges)
    sf = g.seg_flags.data
    cp = g.cross_pointers.data
    ns = g.num_slots
    idx = np.arange(ns, dtype=np.int64)

    head_pos = segmented.seg_copy(Vector(machine, idx), g.seg_flags).data
    seg_len = segmented.seg_plus_distribute(
        Vector(machine, np.ones(ns, dtype=np.int64)), g.seg_flags).data
    machine.charge_elementwise(ns)
    last = idx - head_pos + 1 == seg_len
    nxt_in_seg = np.where(last, head_pos, idx + 1)
    machine.counter.charge("gather", machine._block(ns))
    succ = cp[nxt_in_seg]

    seg_id = np.cumsum(sf) - 1
    vertex_of_slot = g.vertex_reps[seg_id]
    root_head = sf & (vertex_of_slot == root)
    h_r = int(np.flatnonzero(root_head)[0])
    start_flag = np.zeros(ns, dtype=bool)
    start_flag[cp[h_r]] = True
    machine.counter.charge("gather", machine._block(ns))
    nxt = np.where(start_flag[succ], -1, succ)

    rank = list_rank(Vector(machine, nxt)).data
    machine.charge_elementwise(ns)
    pos = (ns - 1) - rank
    machine.counter.charge("gather", machine._block(ns))
    is_down_slot = pos < pos[cp]  # first visit of the edge

    parent = np.full(n, -1, dtype=np.int64)
    machine.counter.charge("permute", machine._block(ns))
    parent[vertex_of_slot[is_down_slot]] = vertex_of_slot[cp[is_down_slot]]
    parent[root] = root
    if (parent < 0).any():
        raise ValueError("edge list is not a single connected tree")
    return parent


def build_rooted_tree(machine: Machine, parent) -> RootedTree:
    """Prepare a rooted tree (``parent[root] == root``) for treefix
    operations: O(lg n) program steps (radix-sort build + tour ranking)."""
    parent = np.asarray(parent, dtype=np.int64)
    n = len(parent)
    roots = np.flatnonzero(parent == np.arange(n))
    if len(roots) != 1:
        raise ValueError(f"expected exactly one root, found {len(roots)}")
    root = int(roots[0])
    if n == 1:
        return RootedTree(machine=machine, n=1, root=root, parent=parent,
                          tour_len=0,
                          down_pos=np.array([-1]), up_pos=np.array([-1]),
                          down_vertex=np.empty(0, dtype=np.int64),
                          is_down=np.empty(0, dtype=bool))

    child = np.flatnonzero(parent != np.arange(n))
    edges = np.column_stack((child, parent[child]))
    g = from_edges(machine, n, edges)
    sf = g.seg_flags.data
    cp = g.cross_pointers.data
    ns = g.num_slots
    idx = np.arange(ns, dtype=np.int64)

    # Euler successor: leave through the next slot in my segment
    head_pos = segmented.seg_copy(Vector(machine, idx), g.seg_flags).data
    seg_len = segmented.seg_plus_distribute(
        Vector(machine, np.ones(ns, dtype=np.int64)), g.seg_flags).data
    machine.charge_elementwise(ns)
    last = idx - head_pos + 1 == seg_len
    nxt_in_seg = np.where(last, head_pos, idx + 1)
    machine.counter.charge("gather", machine._block(ns))
    succ = cp[nxt_in_seg]

    # the canonical tour starts with the root's first departure — the down
    # edge arriving at its first child, i.e. the cross-pointer of the
    # root's head slot; break the cycle just before that arrival
    seg_id = np.cumsum(sf) - 1
    vertex_of_slot = g.vertex_reps[seg_id]
    machine.charge_elementwise(ns)
    root_head = sf & (vertex_of_slot == root)
    h_r = int(np.flatnonzero(root_head)[0])
    start_flag = np.zeros(ns, dtype=bool)
    start_flag[cp[h_r]] = True
    machine.counter.charge("gather", machine._block(ns))
    terminal = start_flag[succ]
    nxt = np.where(terminal, -1, succ)

    # tour positions via list ranking (distance to the tour's end)
    rank = list_rank(Vector(machine, nxt)).data
    machine.charge_elementwise(ns)
    pos = (ns - 1) - rank

    # each slot is an *arrival*: a down edge iff the arriving vertex's
    # parent sits at the other end
    machine.counter.charge("gather", machine._block(ns))
    other_vertex = vertex_of_slot[cp]
    is_down_slot = parent[vertex_of_slot] == other_vertex

    down_pos = np.full(n, -1, dtype=np.int64)
    up_pos = np.full(n, -1, dtype=np.int64)
    machine.counter.charge("permute", machine._block(ns))
    machine.counter.charge("permute", machine._block(ns))
    down_pos[vertex_of_slot[is_down_slot]] = pos[is_down_slot]
    # the up edge of v arrives at parent(v) *from* v: its slot's other end
    # names v
    up_slots = ~is_down_slot
    up_pos[other_vertex[up_slots]] = pos[up_slots]
    up_pos[root] = -1

    is_down = np.zeros(ns, dtype=bool)
    down_vertex = np.full(ns, -1, dtype=np.int64)
    is_down[pos[is_down_slot]] = True
    down_vertex[pos[is_down_slot]] = vertex_of_slot[is_down_slot]

    return RootedTree(machine=machine, n=n, root=root, parent=parent,
                      tour_len=ns, down_pos=down_pos, up_pos=up_pos,
                      down_vertex=down_vertex, is_down=is_down)
