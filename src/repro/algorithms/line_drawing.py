"""Parallel line drawing by processor allocation (Section 2.4.1, Figure 9).

Each line computes its pixel count — ``max(|dx|, |dy|) + 1`` with both
endpoints, the DDA step count — and *allocates* a processor per pixel
(Section 2.4): a ``+-scan`` over the counts assigns each line a contiguous
segment, the endpoints are distributed over the segment with segmented
copies, and every pixel processor then computes its own grid position from
its offset within the segment.  O(1) program steps regardless of the number
of lines or pixels.

Placing the pixels on an actual grid needs "the simplest form of
concurrent write" (two lines may cross); :func:`render` uses the machine's
``combine_write`` and therefore requires a CRCW machine or
``allow_concurrent_write=True``, exactly as the paper notes.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import ops, segmented
from ..core.vector import Vector
from ..machine.model import Machine

__all__ = ["draw_lines", "render", "LineDrawing"]


@dataclass
class LineDrawing:
    """Pixel positions produced by :func:`draw_lines`.

    ``x``/``y`` are per-pixel coordinate vectors; ``seg_flags`` marks the
    first pixel of each line's segment; ``counts`` is the per-line pixel
    count.
    """

    x: Vector
    y: Vector
    seg_flags: Vector
    counts: Vector

    def pixels(self) -> np.ndarray:
        """``(n_pixels, 2)`` integer array of (x, y) pairs (host-side)."""
        return np.column_stack((self.x.data, self.y.data))


def _distribute(values: Vector, hpointers: Vector, seg_flags: Vector,
                counts: Vector) -> Vector:
    """Distribute one per-line value over that line's pixel segment: a
    permute to the segment heads plus a segmented copy (Figure 8)."""
    m = values.machine
    total = len(seg_flags)
    nonempty = counts > 0
    packed_vals = ops.pack(values, nonempty)
    packed_heads = ops.pack(hpointers, nonempty)
    at_heads = packed_vals.permute(packed_heads, length=total)
    return segmented.seg_copy(at_heads, seg_flags)


def draw_lines(machine: Machine, endpoints) -> LineDrawing:
    """Compute the DDA pixels for a set of line segments.

    ``endpoints`` is an ``(L, 4)`` array-like of ``(x0, y0, x1, y1)`` rows.
    Returns one pixel per DDA step including both endpoints.
    """
    pts = np.asarray(endpoints, dtype=np.int64)
    if pts.ndim != 2 or pts.shape[1] != 4:
        raise ValueError(f"endpoints must have shape (L, 4), got {pts.shape}")
    m = machine
    x0 = Vector(m, pts[:, 0])
    y0 = Vector(m, pts[:, 1])
    x1 = Vector(m, pts[:, 2])
    y1 = Vector(m, pts[:, 3])

    dx = x1 - x0
    dy = y1 - y0
    steps = abs(dx).maximum(abs(dy))
    counts = steps + 1

    seg_flags, hpointers = ops.allocate(m, counts)
    sx0 = _distribute(x0, hpointers, seg_flags, counts)
    sy0 = _distribute(y0, hpointers, seg_flags, counts)
    sdx = _distribute(dx, hpointers, seg_flags, counts)
    sdy = _distribute(dy, hpointers, seg_flags, counts)
    ssteps = _distribute(steps, hpointers, seg_flags, counts)

    t = segmented.seg_index(seg_flags)
    # DDA: advance one unit along the major axis per step; round the minor
    # coordinate to the nearest pixel center (two elementwise steps)
    m.charge_elementwise(len(seg_flags))
    m.charge_elementwise(len(seg_flags))
    denom = np.maximum(ssteps.data, 1)
    px = sx0.data + np.floor_divide(2 * t.data * sdx.data + denom, 2 * denom)
    py = sy0.data + np.floor_divide(2 * t.data * sdy.data + denom, 2 * denom)
    return LineDrawing(
        x=Vector(m, px),
        y=Vector(m, py),
        seg_flags=seg_flags,
        counts=counts,
    )


def render(drawing: LineDrawing, width: int, height: int) -> np.ndarray:
    """Scatter the pixels onto a ``height x width`` grid (one concurrent
    write — a pixel may belong to several lines, so this needs CRCW or
    ``allow_concurrent_write=True``)."""
    m = drawing.x.machine
    idx = drawing.y * width + drawing.x
    if len(idx.data) and (drawing.x.data.min() < 0 or drawing.x.data.max() >= width
                          or drawing.y.data.min() < 0 or drawing.y.data.max() >= height):
        raise ValueError("pixel outside the grid")
    ones = Vector(m, np.ones(len(idx), dtype=np.int64))
    flat = ones.combine_write(idx, length=width * height, op="any", default=0)
    return flat.data.reshape(height, width).astype(bool)
