"""List ranking by pointer jumping (Wyllie), plus a work-efficient
contraction variant (Table 5).

A linked list is given as a vector of successor indices (``-1`` terminates a
list; several disjoint lists may coexist).  Pointer jumping squares the
successor function ``ceil(lg n)`` times; every round reads each element's
current successor — and because the successor function of a disjoint union
of simple lists is injective, those reads hit *distinct* cells, so the
algorithm is EREW-legal and costs O(lg n) program steps with n processors.

Table 5's point is that the n-processor version does O(n lg n) work while an
O(n / lg n)-processor version can do O(n): :func:`list_rank_sampled`
randomly splices out an independent set of nodes, recurses on the shorter
list, and reinserts — geometric shrinkage gives O(n) expected work under the
long-vector cost model.
"""
from __future__ import annotations

import numpy as np

from .._util import ceil_log2
from ..core.vector import Vector

__all__ = ["list_rank", "list_rank_and_tail", "list_rank_sampled"]


def _charged_jump_round(m, n: int) -> None:
    """One pointer-jumping round: read successor's rank and successor's
    successor (two unique-index gathers) and add (one elementwise step)."""
    m.counter.charge("gather", m._block(n))
    m.counter.charge("gather", m._block(n))
    m.charge_elementwise(n)


def list_rank(next_: Vector) -> Vector:
    """Distance from each element to the end of its list.

    The last element of a list (``next == -1``) has rank 0; its predecessor
    rank 1; and so on.  O(lg n) program steps.
    """
    rank, _ = list_rank_and_tail(next_)
    return rank


def list_rank_and_tail(next_: Vector) -> tuple[Vector, Vector]:
    """Rank each element *and* report the index of its list's terminal
    element (Wyllie's algorithm computes both for free: after the pointers
    collapse, each element's last non-null pointer is the tail)."""
    m = next_.machine
    n = len(next_)
    ptr = next_.data.astype(np.int64).copy()
    if len(ptr) and (ptr.max() >= n or ptr.min() < -1):
        raise IndexError("successor indices must be in [-1, n)")
    rank = (ptr >= 0).astype(np.int64)
    tail = np.arange(n, dtype=np.int64)
    tail[ptr >= 0] = ptr[ptr >= 0]
    rounds = ceil_log2(n) if n > 1 else 0
    for _ in range(rounds):
        live = ptr >= 0
        if not live.any():
            break
        _charged_jump_round(m, n)
        nxt = ptr[live]
        rank[live] += rank[nxt]
        # tail[nxt] is either nxt's current pointer (nxt still live) or
        # nxt's already-final tail (nxt finished) — correct either way
        tail[live] = tail[nxt]
        ptr[live] = ptr[nxt]
    return Vector(m, rank), Vector(m, tail)


def list_rank_sampled(next_: Vector, *, base_size: int = 2) -> Vector:
    """Work-efficient list ranking by random splicing (Table 5).

    Each round flips a coin per live node; a node whose coin is heads and
    whose successor's coin is tails is *spliced out* (its predecessor's
    pointer skips it, accumulating its weight).  The spliced nodes form an
    independent set, so all splices commute; an expected constant fraction
    leaves each round.  The survivors are load-balanced (packed) and the
    process recurses; spliced nodes are then reinserted level by level.

    With ``p = n / lg n`` processors under the long-vector cost model this
    does O(n) work in O(lg n) rounds, versus O(n lg n) for plain pointer
    jumping.
    """
    m = next_.machine
    n = len(next_)
    if n == 0:
        return Vector(m, np.empty(0, dtype=np.int64))

    ptr = next_.data.astype(np.int64).copy()
    weight = np.ones(n, dtype=np.int64)  # weight of the link *leaving* each node
    alive = np.ones(n, dtype=bool)
    levels: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []

    # splice only while the survivors overfill the machine; once one
    # element per processor remains, plain pointer jumping is optimal
    p_eff = m.num_processors if m.num_processors is not None else n
    threshold = max(base_size, p_eff)
    live_count = n
    while live_count > threshold:
        # one parallel round: coin flip, predecessor lookup, splice (a
        # constant number of elementwise steps, gathers and one pack)
        m.charge_elementwise(live_count)
        coins = m.rng.integers(0, 2, size=n).astype(bool) & alive
        # a node is spliced if heads and its successor is tails (or no succ)
        succ_ok = np.ones(n, dtype=bool)
        has_succ = alive & (ptr >= 0)
        if not has_succ.any():
            break  # every live node is already a list tail; nothing to rank
        succ_ok[has_succ] = ~coins[ptr[has_succ]]
        m.counter.charge("gather", m._block(live_count))
        spliced = coins & succ_ok & has_succ  # keep list tails in place
        if spliced.any():
            # predecessors of spliced nodes skip over them
            pred = np.full(n, -1, dtype=np.int64)
            valid = alive & (ptr >= 0)
            pred[ptr[valid]] = np.flatnonzero(valid)
            m.counter.charge("permute", m._block(live_count))
            sp = np.flatnonzero(spliced)
            has_pred = pred[sp] >= 0
            pw = sp[has_pred]
            m.charge_elementwise(live_count)
            weight_save = weight[sp].copy()
            ptr_save = ptr[sp].copy()
            weight[pred[pw]] += weight[pw]
            ptr[pred[pw]] = ptr[pw]
            alive[sp] = False
            levels.append((sp, ptr_save, weight_save))
        # load balance the survivors (a pack over the live elements)
        m.charge_scan(live_count)
        m.counter.charge("permute", m._block(live_count))
        live_count = int(alive.sum())
        if not spliced.any() and live_count <= base_size * 4:
            break

    # rank the small remainder by pointer jumping (cheap: O(lg base) steps)
    rank = np.zeros(n, dtype=np.int64)
    live_idx = np.flatnonzero(alive)
    sub_next = np.full(len(live_idx), -1, dtype=np.int64)
    remap = np.full(n, -1, dtype=np.int64)
    remap[live_idx] = np.arange(len(live_idx))
    has = ptr[live_idx] >= 0
    sub_next[has] = remap[ptr[live_idx][has]]
    sub_weight = weight[live_idx]
    sub_rank = _weighted_jump(m, sub_next, sub_weight)
    rank[live_idx] = sub_rank

    # reinsert spliced levels in reverse order (each level touches only its
    # spliced nodes plus the already-ranked frontier: charge the level size)
    for sp, ptr_save, weight_save in reversed(levels):
        m.counter.charge("gather", m._block(len(sp)))
        m.charge_elementwise(len(sp))
        succ_rank = np.where(ptr_save >= 0, rank[np.clip(ptr_save, 0, n - 1)], 0)
        rank[sp] = succ_rank + weight_save * (ptr_save >= 0)
    return Vector(m, rank)


def _weighted_jump(m, ptr: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """Weighted Wyllie ranking on a small list (host helper with charges)."""
    n = len(ptr)
    # invariant: rank[i] is the weighted distance from i to ptr[i]; adding
    # the successor's rank and doubling the pointer preserves it.
    rank = np.where(ptr >= 0, weight, 0).astype(np.int64)
    ptr = ptr.copy()
    rounds = ceil_log2(n) if n > 1 else 0
    for _ in range(rounds):
        live = ptr >= 0
        if not live.any():
            break
        _charged_jump_round(m, n)
        nxt = ptr[live]
        rank[live] += rank[nxt]
        ptr[live] = ptr[nxt]
    return rank
