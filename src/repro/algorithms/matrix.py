"""Matrix algorithms on the scan model (Table 1's matrix rows).

With ``n²`` processors (one per matrix element, a flattened vector whose
segments are matrix columns):

* ``mat_vec`` — vector × matrix in **O(1)** program steps: distribute ``x``
  down the columns with one permute + segmented copy, multiply, transpose
  (a fixed permutation), and sum the rows with one segmented distribute.
* ``mat_mul`` — matrix × matrix in **O(n)** steps: ``n`` rank-1 updates,
  each O(1) (column of A copied across rows, row of B copied down columns).
* ``solve`` — linear systems with partial pivoting in **O(n)** steps:
  Gauss–Jordan elimination where each iteration finds the pivot with one
  segmented max-distribute, swaps rows with one permute, and eliminates
  with O(1) distributes.

Under EREW charging the same code costs an extra ``lg n`` factor per
broadcast/distribute — Table 1's ``O(n lg n)`` solver and ``O(lg n)``
vector-matrix rows.
"""
from __future__ import annotations

import numpy as np

from ..core import ops, scans, segmented
from ..core.vector import Vector
from ..machine.model import Machine

__all__ = ["ParallelMatrix", "mat_vec", "mat_mul", "solve"]


class ParallelMatrix:
    """An ``r x c`` matrix stored column-major in one machine vector, so
    each column is a contiguous segment."""

    def __init__(self, machine: Machine, array) -> None:
        a = np.asarray(array, dtype=np.float64)
        if a.ndim != 2:
            raise ValueError(f"expected a 2-D array, got shape {a.shape}")
        self.machine = machine
        self.rows, self.cols = a.shape
        self.flat = Vector(machine, a.reshape(-1, order="F"))
        self._col_flags = None

    @classmethod
    def from_flat(cls, flat: Vector, rows: int, cols: int) -> "ParallelMatrix":
        m = cls.__new__(cls)
        m.machine = flat.machine
        m.rows, m.cols = rows, cols
        m.flat = flat
        m._col_flags = None
        return m

    def to_array(self) -> np.ndarray:
        return self.flat.data.reshape(self.rows, self.cols, order="F").copy()

    def col_flags(self) -> Vector:
        """Segment flags marking the head of each column (index arithmetic
        every processor does locally; uncharged)."""
        if self._col_flags is None:
            f = np.zeros(self.rows * self.cols, dtype=bool)
            f[:: self.rows] = True
            self._col_flags = Vector(self.machine, f)
        return self._col_flags

    def transpose_index(self) -> Vector:
        """The fixed transposition permutation (computed locally from each
        processor's address; uncharged until used in a permute)."""
        r, c = self.rows, self.cols
        i = np.arange(r * c, dtype=np.int64)
        row, col = i % r, i // r
        return Vector(self.machine, row * c + col)

    def transposed(self) -> "ParallelMatrix":
        """Transpose with one permute."""
        out = self.flat.permute(self.transpose_index())
        return ParallelMatrix.from_flat(out, self.cols, self.rows)

    def broadcast_row(self, k: int) -> Vector:
        """Every element receives its column's entry from row ``k``: one
        permute (row ``k`` to the column heads) plus a segmented copy."""
        m = self.machine
        n = self.rows * self.cols
        row_pos = Vector(m, np.arange(self.cols, dtype=np.int64) * self.rows + k)
        row_vals = self.flat.gather(row_pos)
        heads = Vector(m, np.arange(self.cols, dtype=np.int64) * self.rows)
        at_heads = row_vals.permute(heads, length=n)
        return segmented.seg_copy(at_heads, self.col_flags())

    def broadcast_col(self, k: int) -> Vector:
        """Every element receives its row's entry from column ``k``
        (broadcast a row of the transpose: two permutes + a copy)."""
        t = self.transposed()
        spread = t.broadcast_row(k)
        return spread.permute(t.transpose_index())


def mat_vec(machine: Machine, a, x) -> Vector:
    """``A @ x`` in O(1) program steps with one processor per element."""
    mat = a if isinstance(a, ParallelMatrix) else ParallelMatrix(machine, a)
    xv = x if isinstance(x, Vector) else machine.vector(np.asarray(x, dtype=np.float64))
    if len(xv) != mat.cols:
        raise ValueError(f"length mismatch: {mat.cols} columns vs {len(xv)} entries")
    m = machine
    n = mat.rows * mat.cols
    heads = Vector(m, np.arange(mat.cols, dtype=np.int64) * mat.rows)
    x_at_heads = xv.permute(heads, length=n)
    x_spread = segmented.seg_copy(x_at_heads, mat.col_flags())
    prod = mat.flat * x_spread
    # transpose so rows become contiguous, then one segmented sum per row
    prod_t = ParallelMatrix.from_flat(prod.permute(mat.transpose_index()),
                                      mat.cols, mat.rows)
    sums = segmented.seg_plus_distribute(prod_t.flat, prod_t.col_flags())
    return ops.pack(sums, prod_t.col_flags())


def mat_mul(machine: Machine, a, b) -> ParallelMatrix:
    """``A @ B`` in O(n) program steps (n rank-1 updates, each O(1))."""
    ma = a if isinstance(a, ParallelMatrix) else ParallelMatrix(machine, a)
    mb = b if isinstance(b, ParallelMatrix) else ParallelMatrix(machine, b)
    if ma.cols != mb.rows:
        raise ValueError(f"shape mismatch: {ma.cols} vs {mb.rows}")
    m = machine
    acc = Vector(m, np.zeros(ma.rows * mb.cols))
    out = ParallelMatrix.from_flat(acc, ma.rows, mb.cols)
    for k in range(ma.cols):
        # A[:, k] is one contiguous column segment (an exclusive gather)
        a_k = ma.flat.gather(
            Vector(m, k * ma.rows + np.arange(ma.rows, dtype=np.int64)))
        a_spread = _spread_over_rows(out, a_k)
        b_spread = _spread_over_cols(out, mb, k)
        acc = acc + a_spread * b_spread
        out = ParallelMatrix.from_flat(acc, ma.rows, mb.cols)
    return out


def _spread_over_rows(out: ParallelMatrix, col_vals: Vector) -> Vector:
    """Value ``col_vals[i]`` delivered to every output slot in row ``i``:
    permute into the transposed layout's column heads, copy, permute back."""
    t_rows, t_cols = out.cols, out.rows
    m = out.machine
    n = out.rows * out.cols
    heads = Vector(m, np.arange(t_cols, dtype=np.int64) * t_rows)
    at_heads = col_vals.permute(heads, length=n)
    f = np.zeros(n, dtype=bool)
    f[::t_rows] = True
    spread_t = segmented.seg_copy(at_heads, Vector(m, f))
    # spread_t is in transposed (row-contiguous) layout; undo
    i = np.arange(n, dtype=np.int64)
    row, col = i % t_rows, i // t_rows
    back = Vector(m, row * t_cols + col)
    return spread_t.permute(back)


def _spread_over_cols(out: ParallelMatrix, mb: ParallelMatrix, k: int) -> Vector:
    """``B[k, j]`` delivered to every output slot in column ``j``."""
    m = out.machine
    n = out.rows * out.cols
    row_pos = Vector(m, np.arange(mb.cols, dtype=np.int64) * mb.rows + k)
    row_vals = mb.flat.gather(row_pos)  # B[k, :]
    heads = Vector(m, np.arange(out.cols, dtype=np.int64) * out.rows)
    at_heads = row_vals.permute(heads, length=n)
    return segmented.seg_copy(at_heads, out.col_flags())


def solve(machine: Machine, a, b) -> Vector:
    """Solve ``A x = b`` by Gauss–Jordan elimination with partial pivoting,
    O(n) program steps with one processor per element of ``[A | b]``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64).reshape(-1)
    n = len(b)
    if a.shape != (n, n):
        raise ValueError(f"A must be ({n}, {n}), got {a.shape}")
    aug = ParallelMatrix(machine, np.column_stack((a, b)))
    m = machine
    rows, cols = aug.rows, aug.cols
    size = rows * cols

    i = np.arange(size, dtype=np.int64)
    row = i % rows
    col = i // rows
    for k in range(n):
        # --- pivot selection: one masked max-distribute ------------------ #
        flat = aug.flat
        m.charge_elementwise(size)
        in_pivot_col = (col == k) & (row >= k)
        absval = np.abs(flat.data)
        key = np.where(in_pivot_col, absval, -1.0)
        scans.max_distribute(Vector(m, key))  # every processor learns the max
        winner_row = int(row[in_pivot_col][np.argmax(key[in_pivot_col])])
        if absval[winner_row + k * rows] == 0.0:
            raise np.linalg.LinAlgError("matrix is singular")

        # --- row swap: one permute --------------------------------------- #
        if winner_row != k:
            swap_to = np.where(row == k, winner_row,
                               np.where(row == winner_row, k, row))
            perm = swap_to + col * rows
            aug = ParallelMatrix.from_flat(flat.permute(Vector(m, perm)), rows, cols)

        # --- elimination: O(1) distributes + elementwise ------------------ #
        pivot_row_vals = aug.broadcast_row(k)          # A[k, j] everywhere
        pivot_col_vals = aug.broadcast_col(k)          # A[i, k] everywhere
        m.charge_elementwise(size)
        pkk = aug.flat.data[k + k * rows]              # one memory reference
        m.counter.charge("memory", 1)
        factor = pivot_col_vals * (1.0 / pkk)
        is_pivot_row = Vector(m, row == k)
        update = aug.flat - factor * pivot_row_vals
        new_flat = is_pivot_row.where(aug.flat, update)
        aug = ParallelMatrix.from_flat(new_flat, rows, cols)

    # divide the rhs by the diagonal (one elementwise step after gathers)
    diag = aug.flat.gather(Vector(m, np.arange(n, dtype=np.int64) * (rows + 1)))
    rhs = aug.flat.gather(Vector(m, n * rows + np.arange(n, dtype=np.int64)))
    return rhs / diag
