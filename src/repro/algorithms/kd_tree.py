"""k-d tree construction in O(lg n) program steps (Table 1).

The trick (from Blelloch & Little's scan-model geometry) is to sort the
points *once per coordinate* and then maintain **all d orderings** through
every median split: splitting a node by its axis-median is trivial in that
axis's ordering (the first half of the segment), and every other ordering
follows by communicating each point's side through its point id (two
exclusive permute/gather steps per ordering) and applying the same stable
segmented split.  Every level therefore costs O(d) = O(1) program steps
for fixed dimension, and the ``lg n`` levels plus the ``d`` initial radix
sorts give O(lg n) total — where an EREW P-RAM pays O(lg n) *per level*
for the splits' scans, Table 1's O(lg² n).

Any dimension ``d >= 1`` is supported; the paper's planar case is d = 2.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._util import ceil_log2
from ..core import segmented
from ..core.vector import Vector
from ..machine.model import Machine
from .radix_sort import split_radix_sort_with_rank

__all__ = ["build_kd_tree", "KDTree", "KDLevel"]


@dataclass
class KDLevel:
    """One level of splits: the segment head positions (into the level's
    split-axis ordering) before splitting, and the axis used."""

    axis: int
    heads: np.ndarray
    sizes: np.ndarray


@dataclass
class KDTree:
    """The built tree: ``order`` is the input-point permutation in final
    kd order (leaves left to right); ``levels`` records each level's
    segmentation.  ``points`` keeps the inputs for validation."""

    order: np.ndarray
    levels: list[KDLevel] = field(default_factory=list)
    points: np.ndarray = field(default_factory=lambda: np.empty((0, 2), dtype=np.int64))

    def validate(self) -> None:
        """Recursively check the kd property: at every node the left half's
        split-axis coordinates are <= the right half's (host-side)."""
        dims = self.points.shape[1] if len(self.points) else 2

        def rec(lo: int, hi: int, depth: int) -> None:
            size = hi - lo
            if size <= 1:
                return
            axis = depth % dims
            half = (size + 1) // 2
            seg = self.points[self.order[lo:hi], axis]
            left, right = seg[:half], seg[half:]
            if len(left) and len(right) and left.max() > right.min():
                raise AssertionError(
                    f"kd violation at [{lo}, {hi}) axis {axis}: "
                    f"{left.max()} > {right.min()}"
                )
            rec(lo, lo + half, depth + 1)
            rec(lo + half, hi, depth + 1)

        rec(0, len(self.order), 0)


def _sort_order(machine: Machine, keys: np.ndarray) -> np.ndarray:
    """Point ids sorted by integer key (split radix sort on key*n + id so
    duplicates order deterministically)."""
    n = len(keys)
    shift = keys - keys.min()
    combined = Vector(machine, shift.astype(np.int64) * n + np.arange(n))
    _, rank = split_radix_sort_with_rank(combined)
    return rank.data.copy()  # original slot == point id, now in sorted order


def build_kd_tree(machine: Machine, points) -> KDTree:
    """Build a k-d tree over integer points (``(n, d)`` array-like,
    ``d >= 1``; the paper's planar case is ``d = 2``)."""
    pts = np.asarray(points, dtype=np.int64)
    if pts.ndim != 2 or pts.shape[1] < 1:
        raise ValueError(f"points must have shape (n, d >= 1), got {pts.shape}")
    n, dims = pts.shape
    if n == 0:
        return KDTree(order=np.empty(0, dtype=np.int64), points=pts)
    m = machine

    # one global sort per coordinate (point ids in each axis ordering)
    orders = {ax: Vector(m, _sort_order(m, pts[:, ax])) for ax in range(dims)}
    sf0 = np.zeros(n, dtype=bool)
    sf0[0] = True
    flags = {ax: Vector(m, sf0.copy()) for ax in range(dims)}

    tree = KDTree(order=np.empty(0, dtype=np.int64), points=pts)
    levels = ceil_log2(n) if n > 1 else 0
    for depth in range(levels):
        axis = depth % dims
        sf = flags[axis]
        heads = np.flatnonzero(sf.data)
        sizes = np.diff(np.append(heads, n))
        tree.levels.append(KDLevel(axis=axis, heads=heads, sizes=sizes))
        if (sizes <= 1).all():
            break

        # side of each position in the split ordering: the lower half stays
        pos = segmented.seg_index(sf)
        length = segmented.seg_plus_distribute(
            Vector(m, np.ones(n, dtype=np.int64)), sf)
        side = pos >= (length + 1) // 2  # True: upper half

        # the side, indexed by point id, drives every other ordering
        side_by_id = side.astype(np.int64).permute(orders[axis])
        orders[axis] = segmented.seg_split(orders[axis], side, sf)
        flags[axis] = _flags_after_split(side, sf)
        for other in range(dims):
            if other == axis:
                continue
            side_other = side_by_id.gather(orders[other]) > 0
            orders[other] = segmented.seg_split(orders[other], side_other,
                                                flags[other])
            flags[other] = _flags_after_split(side_other, flags[other])

    tree.order = orders[0].data.copy()
    return tree


def _flags_after_split(side: Vector, sf: Vector) -> Vector:
    """Segment flags after a stable two-way split: a segment begins at each
    old head and where the side label flips (ride the labels through the
    same split, then mark changes)."""
    m = side.machine
    moved = segmented.seg_split(side.astype(np.int64), side, sf)
    m.charge_permute(len(side))
    m.charge_elementwise(len(side))
    lab = moved.data
    old_heads = sf.data
    nf = np.empty(len(lab), dtype=bool)
    if len(lab):
        nf[0] = True
        nf[1:] = lab[1:] != lab[:-1]
    return Vector(m, nf | old_heads)
