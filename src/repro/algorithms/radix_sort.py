"""Split radix sort (Section 2.2.1, Figures 2–3).

The paper's flagship example of *enumerating* with scans: loop over the bits
of the keys from least significant to most significant, and on each
iteration ``split`` the vector — pack keys with a 0 in the current bit to
the bottom and keys with a 1 to the top, stably.  Each ``split`` is O(1)
program steps, so sorting ``d``-bit keys takes ``O(d)`` steps: ``O(lg n)``
under the usual assumption that keys are ``O(lg n)`` bits.

This is the sort the Connection Machine's instruction set adopted; Table 4
compares its circuit-level cost against Batcher's bitonic sort (see
:mod:`repro.hardware.analysis`).
"""
from __future__ import annotations

from typing import Optional

import numpy as np

from ..core import ops, scans
from ..core.vector import Vector
from ..observe.spans import span

__all__ = ["split_radix_sort", "split_radix_sort_with_rank",
           "split_radix_sort_signed", "split_radix_sort_float", "key_bits"]


def key_bits(v: Vector) -> int:
    """Bits needed to represent the largest key (one reduce step).

    The paper assumes the bit width ``d`` is known to the program; computing
    it costs one ``max-reduce``.
    """
    top = scans.max_reduce(v)
    return max(int(top).bit_length(), 1)


def _check_sortable(v: Vector) -> None:
    if not np.issubdtype(v.dtype, np.integer):
        raise TypeError("split radix sort requires integer keys")
    if len(v.data) and v.data.min() < 0:
        raise ValueError(
            "split radix sort requires non-negative keys; bias-shift signed "
            "keys first (see examples/sorting_showdown.py)"
        )


def split_radix_sort(v: Vector, number_of_bits: Optional[int] = None) -> Vector:
    """Sort non-negative integer keys with ``number_of_bits`` split passes.

    ::

        define split-radix-sort(A, number-of-bits){
            for i from 0 to (number-of-bits - 1)
                A <- split(A, A<i>)}

    Stable, and O(1) program steps per bit.
    """
    _check_sortable(v)
    if number_of_bits is None:
        number_of_bits = key_bits(v)
    for i in range(number_of_bits):
        with span(f"bit[{i}]"):
            v = ops.split(v, v.bit(i))
    return v


def split_radix_sort_signed(v: Vector) -> Vector:
    """Sort signed integers with the split radix sort.

    The paper's remark that "integers, characters, and floating-point
    numbers can all be sorted with a radix sort": signed keys become
    order-isomorphic unsigned keys by a bias shift (one ``min-reduce``
    and two elementwise steps around the unsigned sort).
    """
    if not np.issubdtype(v.dtype, np.integer):
        raise TypeError("split_radix_sort_signed requires integer keys")
    lo = scans.min_reduce(v)
    shifted = v - lo
    return split_radix_sort(shifted) + lo


def split_radix_sort_float(v: Vector) -> Vector:
    """Sort (non-NaN) float64 keys with 64 split passes.

    The Section 3.4 trick: reinterpret the IEEE-754 bits as integers;
    complement the whole word for negatives and flip the sign bit for
    positives.  The encoded words, read as *unsigned* integers, order
    exactly like the floats, so the usual bottom-bit-up split passes sort
    them — ``v.bit(i)`` extracts raw bits regardless of two's-complement
    sign, so no non-negativity shift is needed.  Two elementwise recode
    steps around O(1) steps per bit.
    """
    if not np.issubdtype(v.dtype, np.floating):
        raise TypeError("split_radix_sort_float requires float keys")
    if np.isnan(v.data).any():
        raise ValueError("NaN keys have no place in a total order")
    m = v.machine
    sign_bit = np.int64(-(2**63))
    raw = v.data.astype(np.float64).view(np.int64)
    m.charge_elementwise(len(v))
    encoded = np.where(raw < 0, ~raw, raw ^ sign_bit)
    keys = Vector(m, encoded)
    for i in range(64):
        keys = ops.split(keys, keys.bit(i))
    m.charge_elementwise(len(v))
    back = keys.data
    # top bit clear <=> the float was negative (its word was complemented)
    undone = np.where(back >= 0, ~back, back ^ sign_bit)
    return Vector(m, undone.view(np.float64).copy())


def split_radix_sort_with_rank(v: Vector, number_of_bits: Optional[int] = None
                               ) -> tuple[Vector, Vector]:
    """Sort and also return, for each *output* position, the input position
    its key came from (the sort permutation).  Used by the graph builder to
    carry edge payloads alongside the sorted vertex numbers.

    The rank vector rides through the same splits as the keys, so the cost
    is the same O(1) steps per bit with one extra permute each.
    """
    _check_sortable(v)
    if number_of_bits is None:
        number_of_bits = key_bits(v)
    m = v.machine
    rank = m.arange(len(v))
    for i in range(number_of_bits):
        flags = v.bit(i)
        # both vectors move through the same permutation (Figure 3)
        n = len(v)
        i_down = ops.enumerate_(~flags)
        i_up = (n - 1) - ops.back_enumerate(flags)
        index = flags.where(i_up, i_down)
        v = v.permute(index)
        rank = rank.permute(index)
    return v, rank
