"""Line of sight in O(1) program steps (Table 1).

Given an observation point and altitudes along rays radiating from it, a
point is visible exactly when the vertical angle from the observer to that
point exceeds the angle to *every* earlier point on its ray — i.e. when its
angle beats an exclusive segmented ``max-scan`` of the angles.  One scan,
a handful of elementwise steps: O(1), the paper's only O(1)-row in Table 1
(both P-RAM models need O(lg n) for the running maximum).

:func:`visibility` is that core, taking per-ray altitude segments.
:func:`line_of_sight_grid` is a convenience wrapper that builds the rays
from a 2-D altitude grid with the line-drawing routine; reading the grid
altitudes along crossing rays and painting the result back are concurrent
memory operations, so the wrapper needs a CRCW machine or
``allow_concurrent_write=True`` (the same caveat as rendering lines).
"""
from __future__ import annotations

import numpy as np

from ..core import segmented
from ..core.vector import Vector
from ..machine.model import Machine
from .line_drawing import draw_lines

__all__ = ["visibility", "line_of_sight_grid"]


def visibility(altitudes: Vector, seg_flags: Vector, distances: Vector,
               observer_altitude: float) -> Vector:
    """Which points are visible from the observer along each ray?

    ``altitudes`` holds the terrain height at each ray point, ``seg_flags``
    marks each ray's first point, and ``distances`` the (positive) distance
    of each point from the observer.  O(1) program steps.
    """
    m = altitudes.machine
    m.charge_elementwise(len(altitudes))
    angle = (altitudes.data - observer_altitude) / np.maximum(distances.data, 1e-12)
    av = Vector(m, angle)
    best_before = segmented.seg_max_scan(av, seg_flags, identity=-np.inf)
    return av > best_before


def line_of_sight_grid(machine: Machine, altitudes, observer: tuple[int, int],
                       observer_height: float = 0.0) -> np.ndarray:
    """Visibility map of a 2-D altitude grid from ``observer = (x, y)``.

    Casts one ray to every boundary cell (so every grid cell is covered),
    evaluates :func:`visibility` on all rays at once, and paints visible
    cells back onto the grid with a combining write.
    """
    alt = np.asarray(altitudes, dtype=np.float64)
    if alt.ndim != 2:
        raise ValueError("altitudes must be a 2-D grid")
    h, w = alt.shape
    ox, oy = observer
    if not (0 <= ox < w and 0 <= oy < h):
        raise ValueError("observer outside the grid")

    # rays to every boundary cell
    bx = np.concatenate((np.arange(w), np.arange(w),
                         np.zeros(h, dtype=int), np.full(h, w - 1)))
    by = np.concatenate((np.zeros(w, dtype=int), np.full(w, h - 1),
                         np.arange(h), np.arange(h)))
    keep = ~((bx == ox) & (by == oy))
    bx, by = bx[keep], by[keep]
    ends = np.column_stack((np.full(len(bx), ox), np.full(len(bx), oy), bx, by))

    drawing = draw_lines(machine, ends)
    px, py = drawing.x.data, drawing.y.data

    # altitude lookup along the rays: rays share cells near the observer, a
    # concurrent read
    machine.charge_combine_write(len(px))
    ray_alt = Vector(machine, alt[py, px])
    machine.charge_elementwise(len(px))
    dist = Vector(machine, np.hypot(px - ox, py - oy))
    vis = visibility(ray_alt, drawing.seg_flags, dist,
                     float(alt[oy, ox]) + observer_height)

    ones = Vector(machine, vis.data.astype(np.int64))
    idx = Vector(machine, (py * w + px).astype(np.int64))
    flat = ones.combine_write(idx, length=h * w, op="max", default=0)
    grid = flat.data.reshape(h, w).astype(bool)
    grid[oy, ox] = True
    return grid
