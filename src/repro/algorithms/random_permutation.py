"""Sequentially-equivalent parallel random permutation (binary-forking).

The BFGS line of work (Blelloch–Fineman–Gu–Sun, PAPERS.md) shows that the
textbook *sequential* Durstenfeld shuffle —

    for i in 0..n-1: swap(A[i], A[H[i]])      # dart H[i] uniform in [i, n)

— parallelises with **no change in output**: in each round every still-live
index ``i`` test-and-sets a min-priority reservation on the two cells it
touches (``i`` and ``H[i]``); an index that wins *both* cells commits its
swap, everyone else's reservation is revoked and retried next round.  A
winner is the minimum live contender on both its cells, so every smaller
index that touches those cells has already committed — the state a winner
reads is exactly the state the serial loop would have shown it, which is
the sequential-equivalence argument (and the property the tests check).

The reservation step is the binary-forking model's one atomic; on machines
without a native test-and-set it is *simulated* and surcharged through
:meth:`Machine.charge_test_and_set`, so the comparison table can run this
algorithm on all five models.  Expected round count is O(lg n) w.h.p.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._util import ceil_log2
from ..machine.model import Machine

__all__ = ["PermutationResult", "random_permutation",
           "serial_random_permutation"]


@dataclass(frozen=True)
class PermutationResult:
    """Outcome of :func:`random_permutation`.

    ``order`` is the permutation (``order[i]`` = element landing at slot
    ``i``); ``darts`` the swap targets that generated it; ``attempts``
    counts reservation attempts summed over rounds (``n`` of them succeed,
    the rest appear in the machine's revoke ledger).
    """

    order: np.ndarray
    darts: np.ndarray
    rounds: int
    attempts: int


def serial_random_permutation(darts: np.ndarray) -> np.ndarray:
    """The serial Durstenfeld loop the parallel algorithm must reproduce."""
    darts = np.asarray(darts, dtype=np.int64)
    n = len(darts)
    order = np.arange(n, dtype=np.int64)
    for i in range(n):
        j = darts[i]
        order[i], order[j] = order[j], order[i]
    return order


def _charged_duplicate_read(m: Machine, n: int) -> None:
    """Reading the reservation cells hit by many darts is a concurrent
    read; EREW-family models simulate it with the same ``2⌈lg n⌉``
    sort-and-copy surcharge :meth:`SparseMatrix.matvec` uses."""
    if m.capabilities.concurrent_read:
        m.charge_gather(n, unique=False)
    else:
        for _ in range(2 * ceil_log2(max(n, 2))):
            m.charge_elementwise(n)


def random_permutation(
    machine: Machine,
    n: int,
    *,
    darts: Optional[np.ndarray] = None,
) -> PermutationResult:
    """Generate a uniform random permutation of ``0..n-1`` in parallel.

    ``darts`` defaults to fresh draws from ``machine.rng`` (``darts[i]``
    uniform in ``[i, n)``, the Durstenfeld distribution); pass them
    explicitly to replay a known instance.  The result equals
    :func:`serial_random_permutation` on the same darts, bit for bit.
    """
    if darts is None:
        base = np.arange(n, dtype=np.int64)
        darts = base + (machine.rng.integers(0, n - base, size=n)
                        if n else np.empty(0, dtype=np.int64))
    darts = np.asarray(darts, dtype=np.int64)
    if len(darts) != n:
        raise ValueError(f"expected {n} darts, got {len(darts)}")
    if n and (np.any(darts < np.arange(n)) or np.any(darts >= n)):
        raise ValueError("dart i must lie in [i, n)")
    order = np.arange(n, dtype=np.int64)
    live = np.arange(n, dtype=np.int64)
    rounds = 0
    attempts = 0
    while live.size:
        rounds += 1
        attempts += live.size
        targets = darts[live]
        # One atomic reservation step: each live index min-writes its
        # priority (itself) into both cells it will swap.
        reserved = machine.execute(
            "combine_write",
            np.concatenate([live, live]),
            np.concatenate([live, targets]),
            n, "min", n)
        machine.charge_gather(n, unique=True)      # read back own cells
        _charged_duplicate_read(machine, n)        # read back dart cells
        won = (reserved[live] == live) & (reserved[targets] == live)
        machine.charge_elementwise(n)
        machine.charge_test_and_set(n, revoked=int(live.size - won.sum()))
        winners = live[won]
        swap_to = darts[winners]
        # Winners' cell pairs are pairwise disjoint (each winner is the
        # minimum on both its cells), so the swaps commit as one unique
        # gather + one unique permute.
        machine.charge_gather(n, unique=True)
        machine.charge_permute(n)
        tmp = order[winners].copy()
        order[winners] = order[swap_to]
        order[swap_to] = tmp
        live = live[~won]
    return PermutationResult(order=order, darts=darts, rounds=rounds,
                             attempts=attempts)
