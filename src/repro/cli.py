"""Command-line interface: regenerate the paper's tables from a terminal.

::

    python -m repro table1 mst          # one Table 1 row
    python -m repro table2              # scan vs memory reference
    python -m repro table4              # split radix vs bitonic
    python -m repro table5              # processor-step complexity
    python -m repro figure9             # the line-drawing figure (ASCII)
    python -m repro demo                # a quick primitive tour
    python -m repro backends            # execution backends + self-check
    python -m repro cluster             # sharded multi-process scan demo
    python -m repro cluster --chaos     # ...with scripted worker failures
    python -m repro profile radix_sort  # spans/steps/bytes profile
    python -m repro profile mst --backend blocked --export chrome
    python -m repro verify --seed 0 --cases 500   # differential fuzz
    python -m repro verify --backends numpy,distributed:2:1 --chaos-seed 7
    python -m repro serve               # scan-as-a-service (docs/serving.md)
    python -m repro serve --selfcheck   # serve, verify a workload, exit

The heavyweight regeneration (wall-clock timing included) lives in
``pytest benchmarks/ --benchmark-only``; this CLI prints the step/cycle
tables directly for interactive use.
"""
from __future__ import annotations

import argparse
import sys

import numpy as np


def _table1(args) -> None:
    from . import Machine
    from .algorithms import (
        connected_components,
        maximal_independent_set,
        minimum_spanning_tree,
        quicksort,
        split_radix_sort,
    )
    from .graph import random_connected_graph

    algos = {
        "mst": lambda m, n, e, w: minimum_spanning_tree(m, n, e, w),
        "cc": lambda m, n, e, w: connected_components(m, n, e),
        "mis": lambda m, n, e, w: maximal_independent_set(m, n, e),
    }
    sort_algos = {
        "radix": split_radix_sort,
        "quicksort": quicksort,
    }
    name = args.algorithm
    sizes = [64, 256, 1024] if name in algos else [256, 1024, 4096]
    print(f"Table 1 ({name}): program steps")
    print(f"{'model':<8}" + "".join(f"{f'n={n}':>10}" for n in sizes))
    for model in ("erew", "crcw", "scan"):
        row = []
        for n in sizes:
            m = Machine(model, seed=0)
            if name in algos:
                rng = np.random.default_rng(0)
                edges, weights = random_connected_graph(rng, n, 2 * n)
                algos[name](m, n, edges, weights)
            else:
                rng = np.random.default_rng(0)
                sort_algos[name](m.vector(rng.integers(0, n, n)))
            row.append(m.steps)
        print(f"{model:<8}" + "".join(f"{s:>10}" for s in row))


def _table2(args) -> None:
    from .hardware import example_system, scan_vs_memory

    t = scan_vs_memory(args.n, 32)
    print(f"Table 2 at n={args.n}, 32-bit operands")
    print(f"{'':<26}{'memory ref':>12}{'scan':>10}")
    print(f"{'bit cycles':<26}"
          f"{int(t['memory_reference']['bit_cycles_wormhole']):>12}"
          f"{int(t['scan_operation']['bit_cycles']):>10}")
    print(f"{'circuit size':<26}{int(t['memory_reference']['circuit_size']):>12}"
          f"{int(t['scan_operation']['circuit_size']):>10}")
    print(f"{'VLSI area':<26}{int(t['memory_reference']['vlsi_area']):>12}"
          f"{int(t['scan_operation']['vlsi_area']):>10}")
    es = example_system()
    print(f"\nSection 3.3 system: {es.per_board_chip_state_machines} SMs + "
          f"{es.per_board_chip_shift_registers} FIFOs per chip; "
          f"32-bit scan = {es.scan_time_at_100ns * 1e6:.1f} us @ 100 ns")


def _table4(args) -> None:
    from .hardware import sort_comparison

    print(f"Table 4: split radix vs bitonic, n={args.n}")
    print(f"{'d':>4}{'split radix':>14}{'bitonic':>10}{'winner':>14}")
    for d in (2, 4, 8, 16, 24, 32):
        t = sort_comparison(args.n, d)
        s = t["split_radix"]["simulated_cycles"]
        b = t["bitonic"]["simulated_cycles"]
        print(f"{d:>4}{s:>14}{b:>10}{'split radix' if s < b else 'bitonic':>14}")


def _table5(args) -> None:
    from . import Machine
    from .algorithms import halving_merge

    n = args.n
    rng = np.random.default_rng(0)
    a = np.sort(rng.integers(0, 10**6, n))
    b = np.sort(rng.integers(0, 10**6, n))
    lg = max(int(n).bit_length() - 1, 1)
    print(f"Table 5 (halving merge, two {n}-element vectors)")
    print(f"{'processors':>12}{'steps':>8}{'work':>14}")
    for p in (2 * n, (2 * n) // lg):
        m = Machine("scan", num_processors=p)
        halving_merge(m.vector(a), m.vector(b))
        print(f"{p:>12}{m.steps:>8}{p * m.steps:>14}")


def _figure9(args) -> None:
    from . import Machine
    from .algorithms import draw_lines, render

    m = Machine("scan", allow_concurrent_write=True)
    d = draw_lines(m, [[11, 2, 23, 14], [2, 13, 13, 8], [16, 4, 31, 4]])
    grid = render(d, 32, 16)
    print(f"Figure 9 — pixels per line: {d.counts.to_list()}, "
          f"{m.steps} program steps")
    for row in grid[::-1]:
        print("".join("#" if c else "." for c in row))


def _demo(args) -> None:
    from . import Machine
    from .core import scans

    m = Machine("scan")
    v = m.vector([2, 1, 2, 3, 5, 8, 13, 21])
    print("A         =", v.to_list())
    print("+-scan(A) =", scans.plus_scan(v).to_list())
    print("steps     =", m.steps)
    e = Machine("erew")
    scans.plus_scan(e.vector(range(65536)))
    print(f"same scan, n=65536, EREW: {e.steps} steps (2 lg n)")


def _faults(args) -> None:
    from . import Machine
    from .core import scans
    from .faults import (
        CIRCUIT_SCHEMES,
        FaultInjector,
        FaultPlan,
        PrimitiveFault,
        run_circuit_campaign,
        run_machine_campaign,
    )
    from .faults.campaign import CampaignResult

    if args.mode == "campaign":
        print(f"Single-bit-flip campaign: {args.trials} trials per scheme, "
              f"n={args.n} leaves, width={args.width}, seed={args.seed}")
        print(CampaignResult.header())
        for scheme in CIRCUIT_SCHEMES:
            r = run_circuit_campaign(scheme, n_leaves=args.n,
                                     width=args.width, trials=args.trials,
                                     base_seed=args.seed)
            print(r.row())
        return

    # demo: one corrupted scan detected, retried, corrected — then a
    # machine whose every scan is corrupted degrading to the EREW fallback
    print("-- checked machine: one scan-output bit flip --")
    plan = FaultPlan(primitive_faults=(
        PrimitiveFault(op_index=0, kind="scan", element=3, bit=7),),
        seed=args.seed)
    m = Machine("scan", reliability=True, fault_injector=FaultInjector(plan))
    v = m.vector([2, 1, 2, 3, 5, 8, 13, 21])
    out = scans.plus_scan(v)
    print("A          =", v.to_list())
    print("+-scan(A)  =", out.to_list())
    print("ledger     =", m.fault_counters.summary())
    print("steps      =", m.steps, "(verification and the retry are charged)")

    print("\n-- persistent faults: retries exhausted, EREW degradation --")
    plan = FaultPlan(probability=1.0, probability_kinds=("scan",),
                     seed=args.seed)
    m = Machine("scan", reliability=True, fault_injector=FaultInjector(plan))
    v = m.vector(list(range(16)))
    out = scans.plus_scan(v)
    again = scans.plus_scan(v)
    snap = m.snapshot()
    print("+-scan(A)  =", out.to_list())
    print("2nd scan   =", again.to_list()[:8], "...")
    print("ledger     =", m.fault_counters.summary())
    print(f"degraded   = {snap.degraded} "
          f"(scan unit failed: {m.scan_unit_failed}); "
          f"scan_degraded steps = {snap.by_kind.get('scan_degraded', 0)}")


def _backends(args) -> None:
    from . import Machine
    from .backends import available_backends, get_backend
    from .core import scans
    from .core.simulate import sim_verify_max_scan, sim_verify_plus_scan

    data = [2, 1, 2, 3, 5, 8, 13, 21]
    print("execution backends (select with Machine(backend=...) or "
          "REPRO_BACKEND):")
    for name in available_backends():
        m = Machine("scan", backend=name)
        v = m.vector(data)
        plus = scans.plus_scan(v)
        mx = scans.max_scan(v, identity=0)
        # cross-verify against the independent Section 3.4 constructions
        ok = (sim_verify_plus_scan(v, plus)
              and sim_verify_max_scan(v, mx, identity=0))
        marker = " (default)" if name == "numpy" else ""
        print(f"  {name:<10} {get_backend(name).__class__.__name__:<18} "
              f"self-check {'ok' if ok else 'FAILED'}  "
              f"+-scan{data} = {plus.to_list()}{marker}")
        if not ok:
            raise SystemExit(f"backend {name!r} failed its self-check")
    # the blocked backend's chunk size is selectable: run one scan whose
    # vector spans many chunks so the carry path is exercised
    m = Machine("scan", backend="blocked:4")
    v = m.vector(data)
    out = scans.plus_scan(v)
    ok = sim_verify_plus_scan(v, out)
    print(f"  blocked:4  chunked carry demo   self-check "
          f"{'ok' if ok else 'FAILED'}  ({len(data)} elements in "
          f"{-(-len(data) // 4)} chunks)")
    if not ok:
        raise SystemExit("blocked:4 failed its self-check")
    # the distributed backend takes a worker count and a distribution
    # threshold: "distributed:2:1" = 2 worker processes, shard even tiny
    # vectors (the default threshold keeps short vectors in-process)
    from .backends.distributed import (DEFAULT_MIN_DISTRIBUTE,
                                       DEFAULT_WORKERS)

    m = Machine("scan", backend="distributed:2:1")
    v = m.vector(data)
    out = scans.plus_scan(v)
    ok = sim_verify_plus_scan(v, out)
    shards = len(m.backend.pool.live_workers())
    print(f"  distributed:2:1  sharded demo   self-check "
          f"{'ok' if ok else 'FAILED'}  ({len(data)} elements across "
          f"{shards} worker processes; defaults: {DEFAULT_WORKERS} workers, "
          f"distribute at n >= {DEFAULT_MIN_DISTRIBUTE})")
    if not ok:
        raise SystemExit("distributed:2:1 failed its self-check")


def _cluster(args) -> int:
    from . import Machine
    from .backends.distributed import DistributedBackend
    from .cluster import ChaosAction, ChaosPlan, RetryPolicy
    from .core import scans
    from .observe.metrics import registry

    chaos = None
    if args.chaos:
        # a scripted failure per recovery path: worker 0 dies mid-scan,
        # worker 1 returns a corrupted shard, one worker hangs past its
        # deadline — all on the first three distributed ops
        chaos = ChaosPlan(actions=(
            ChaosAction(op_id=0, worker=0, kind="kill"),
            ChaosAction(op_id=1, worker=1 % args.workers, kind="corrupt"),
            ChaosAction(op_id=2, worker=0, kind="hang"),
        ), seed=args.seed)
    backend = DistributedBackend(
        workers=args.workers, min_distribute=1,
        policy=RetryPolicy(op_deadline=args.deadline, backoff_base=0.01),
        chaos=chaos)
    try:
        m = Machine("scan", backend=backend)
        rng = np.random.default_rng(args.seed)
        data = rng.integers(0, 100, size=args.n).astype(np.int64)
        v = m.vector(data)
        print(f"cluster: {args.workers} worker processes, sharded scans over "
              f"n={args.n}" + (" (chaos plan armed)" if chaos else ""))

        plus = scans.plus_scan(v).data
        mx = scans.max_scan(v, identity=0).data
        again = scans.plus_scan(v).data  # op 2: the chaos hang's target
        total = int(plus[-1]) + int(data[-1])

        baseline = Machine("scan", backend="numpy")
        bv = baseline.vector(data)
        ok = (np.array_equal(plus, scans.plus_scan(bv).data)
              and np.array_equal(mx, scans.max_scan(bv, identity=0).data)
              and np.array_equal(again, scans.plus_scan(bv).data))
        print(f"+-scan / max-scan / +-scan vs in-process numpy: "
              f"{'bit-identical' if ok else 'MISMATCH'}; sum={total}")
        print(f"step charges: distributed={m.steps} numpy={baseline.steps} "
              f"({'identical' if m.steps == baseline.steps else 'DIVERGED'})")

        print("\n-- cluster ledger --")
        print(backend.ledger.summary())

        print("\n-- cluster metrics --")
        for name in registry.names():
            if not name.startswith("cluster."):
                continue
            snap = registry.snapshot()[name]
            if snap["type"] == "histogram":
                print(f"  {name:<32} count={snap['count']} "
                      f"mean={snap['mean']:.1f} max={snap['max']}")
            else:
                print(f"  {name:<32} {snap['value']}")
        if not ok or m.steps != baseline.steps:
            return 1
        if not backend.ledger.reconciles():
            print("ledger does NOT reconcile")
            return 1
        return 0
    finally:
        backend.shutdown()


def _verify(args) -> int:
    import json

    from .verify import (DEFAULT_ENGINES, ConformanceReport, generate_cases,
                         load_corpus, run_cases, shrink)

    engines = (tuple(e for e in args.backends.split(",") if e)
               if args.backends else DEFAULT_ENGINES)

    if args.chaos_seed is not None:
        # arm every shared worker pool (the distributed engines' pools)
        # with seeded random kills: conformance under chaos
        from .cluster import ChaosPlan, set_shared_chaos

        set_shared_chaos(ChaosPlan(kill_probability=args.chaos_kill_prob,
                                   seed=args.chaos_seed))
        print(f"chaos armed on distributed pools: seed={args.chaos_seed}, "
              f"kill probability {args.chaos_kill_prob} per shard dispatch")
    ops = [o for o in args.ops.split(",") if o] if args.ops else None
    dtypes = [d for d in args.dtypes.split(",") if d] if args.dtypes else None

    cases = []
    if not args.no_corpus:
        replay = load_corpus(args.corpus_dir)
        if replay:
            print(f"replaying {len(replay)} committed corpus case(s)")
        cases.extend(replay)
    cases.extend(generate_cases(seed=args.seed, count=args.cases,
                                ops=ops, dtypes=dtypes))

    report = ConformanceReport(engines=engines)
    report.record_all(run_cases(cases, engines))

    if args.export == "json":
        text = json.dumps(report.to_json_dict(), indent=2)
    else:
        text = report.render_table()
    if args.output:
        import pathlib

        pathlib.Path(args.output).write_text(text + "\n")
        print(f"verify(seed={args.seed}, cases={args.cases}): "
              f"{report.total_cases} run, {report.total_failures} divergent; "
              f"{args.export} written to {args.output}")
    else:
        print(text)

    if report.ok:
        return 0

    # shrink each divergent case to its minimal witness before reporting
    divergent = []
    seen = set()
    for d in report.divergences:
        key = d.case.to_json()
        if key not in seen:
            seen.add(key)
            divergent.append(d.case)
    print(f"\nshrinking {len(divergent)} divergent case(s):")
    shrunken = []
    for case in divergent:
        small = shrink(case, engines)
        shrunken.append(small)
        print(f"  {small.describe()}")
    if args.artifact:
        import pathlib

        payload = {
            "seed": args.seed,
            "engines": list(engines),
            "report": report.to_json_dict(),
            "counterexamples": [c.to_json_dict() for c in shrunken],
        }
        pathlib.Path(args.artifact).write_text(
            json.dumps(payload, indent=2) + "\n")
        print(f"counterexample artifact written to {args.artifact}")
    return 1


def _profile(args) -> None:
    import json

    from .observe import to_chrome_trace, to_json
    from .observe.profiles import run_profile

    p = run_profile(args.algorithm, backend=args.backend, model=args.model,
                    n=args.n, seed=args.seed)
    if args.export == "table":
        text = p.render_table()
    elif args.export == "json":
        text = to_json(p)
    else:
        text = json.dumps(to_chrome_trace(p), indent=2)
    if args.output:
        import pathlib

        pathlib.Path(args.output).write_text(text + "\n")
        print(f"profile({p.algorithm}, backend={p.backend}): {p.steps} steps; "
              f"{args.export} written to {args.output}")
    else:
        print(text)


def _models(args) -> None:
    from .machine.comparison import render_models_table

    names = args.algorithms.split(",") if args.algorithms else None
    print(render_models_table(names=names, n=args.n, seed=args.seed,
                              num_processors=args.processors))


def _serve(args) -> int:
    import asyncio
    import json

    from .serve import ScanServer, ServeClient, ServeConfig

    config = ServeConfig(
        host=args.host, port=args.port, backend=args.backend,
        batch_window=args.window, max_batch=args.max_batch,
        max_pending=args.max_pending, cache_entries=args.cache,
        quota_budget=args.budget, quota_refill_per_s=args.refill)

    async def _selfcheck() -> int:
        """Start the server, push a mixed concurrent workload through it,
        check every answer against a serial machine, print the SLO
        snapshot.  Exit 0 iff everything came back bit-identical."""
        from .core import scans, segmented
        from .machine.model import Machine

        server = ScanServer(config)
        await server.start()
        rng = np.random.default_rng(7)
        vecs = [rng.integers(-99, 99, size=257, dtype=np.int64)
                for _ in range(48)]
        clients = [await ServeClient.connect(args.host, server.port)
                   for _ in range(8)]
        jobs = [clients[i % len(clients)].scan("plus_scan", v)
                for i, v in enumerate(vecs)]
        seg_v = rng.integers(0, 9, size=30, dtype=np.int64)
        jobs.append(clients[0].scan("seg_max_scan", seg_v,
                                    seg_lengths=[10, 5, 15]))
        outs = await asyncio.gather(*jobs)

        failures = 0
        m = Machine("scan")
        for v, out in zip(vecs, outs):
            if not np.array_equal(scans.plus_scan(m.vector(v)).data, out):
                failures += 1
        flags = np.zeros(30, dtype=bool)
        flags[[0, 10, 15]] = True
        if not np.array_equal(
                segmented.seg_max_scan(m.vector(seg_v),
                                       m.flags(flags)).data, outs[-1]):
            failures += 1

        snap = server.stats.snapshot()
        for c in clients:
            await c.close()
        await server.shutdown()
        print(json.dumps(snap, indent=2))
        if failures:
            print(f"selfcheck FAILED: {failures} responses diverged "
                  f"from the serial machine")
            return 1
        print(f"selfcheck ok: {snap['ok']} responses bit-identical, "
              f"mean batch occupancy {snap['mean_batch_occupancy']}")
        return 0

    async def _serve_until_interrupt() -> int:
        server = ScanServer(config)
        await server.start()
        print(f"serving on {args.host}:{server.port} "
              f"(backend={args.backend or 'REPRO_BACKEND/default'}, "
              f"window={args.window * 1e3:.1f}ms, "
              f"max_batch={args.max_batch})")
        try:
            await server.serve_forever()
        finally:
            await server.shutdown()
            print(json.dumps(server.stats.snapshot(), indent=2))
        return 0

    try:
        return asyncio.run(_selfcheck() if args.selfcheck
                           else _serve_until_interrupt())
    except KeyboardInterrupt:
        return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures from 'Scans as Primitive "
                    "Parallel Operations' (Blelloch, 1987/89)")
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("table1", help="step-complexity rows")
    p1.add_argument("algorithm",
                    choices=["mst", "cc", "mis", "radix", "quicksort"])
    p1.set_defaults(func=_table1)

    p2 = sub.add_parser("table2", help="scan vs memory reference")
    p2.add_argument("--n", type=int, default=65536)
    p2.set_defaults(func=_table2)

    p4 = sub.add_parser("table4", help="split radix vs bitonic")
    p4.add_argument("--n", type=int, default=65536)
    p4.set_defaults(func=_table4)

    p5 = sub.add_parser("table5", help="processor-step complexity")
    p5.add_argument("--n", type=int, default=8192)
    p5.set_defaults(func=_table5)

    p9 = sub.add_parser("figure9", help="the line-drawing figure")
    p9.set_defaults(func=_figure9)

    pd = sub.add_parser("demo", help="a 10-second primitive tour")
    pd.set_defaults(func=_demo)

    pb = sub.add_parser("backends",
                        help="list execution backends and self-check each")
    pb.set_defaults(func=_backends)

    pc = sub.add_parser(
        "cluster",
        help="sharded multi-process scan demo: pool, ledger, metrics")
    pc.add_argument("--workers", type=int, default=4,
                    help="worker processes in the pool")
    pc.add_argument("--n", type=int, default=1 << 20,
                    help="vector length for the demo scans")
    pc.add_argument("--seed", type=int, default=0)
    pc.add_argument("--deadline", type=float, default=2.0,
                    help="per-shard op deadline in seconds (a scripted "
                         "hang stalls this long before recovery kicks in)")
    pc.add_argument("--chaos", action="store_true",
                    help="script a kill, a corruption and a hang into the "
                         "demo to show the recovery ladder")
    pc.set_defaults(func=_cluster)

    pp = sub.add_parser(
        "profile",
        help="profile a Table 1 algorithm: spans, steps, bytes, metrics")
    from .observe.profiles import available_algorithms

    pp.add_argument("algorithm", choices=available_algorithms())
    pp.add_argument("--backend", default=None,
                    help="execution backend (numpy, blocked, blocked:<chunk>, "
                         "native, native:<threads>:<block>, reference); "
                         "default honors REPRO_BACKEND")
    pp.add_argument("--model", default="scan",
                    choices=["erew", "crew", "crcw", "scan",
                             "binary-forking"])
    pp.add_argument("--n", type=int, default=None,
                    help="problem size (default: the workload's pinned size)")
    pp.add_argument("--seed", type=int, default=0)
    pp.add_argument("--export", default="table",
                    choices=["table", "json", "chrome"],
                    help="output format; 'chrome' is the Trace Event JSON "
                         "for chrome://tracing")
    pp.add_argument("-o", "--output", default=None,
                    help="write the export to a file instead of stdout")
    pp.set_defaults(func=_profile)

    pm = sub.add_parser(
        "models",
        help="Table 1 re-run: the same algorithms costed on all five "
             "machine models, binary-forking included")
    pm.add_argument("--n", type=int, default=None,
                    help="problem size for every row (default: each "
                         "algorithm's pinned size)")
    pm.add_argument("--seed", type=int, default=0)
    pm.add_argument("--processors", type=int, default=None,
                    help="simulated processor count (default: n)")
    pm.add_argument("--algorithms", default=None,
                    help="comma-separated subset (default: all)")
    pm.set_defaults(func=_models)

    pv = sub.add_parser(
        "verify",
        help="differential conformance fuzz: every op x dtype x backend "
             "against the serial oracle")
    pv.add_argument("--seed", type=int, default=0)
    pv.add_argument("--cases", type=int, default=500,
                    help="generated cases (on top of the committed corpus)")
    pv.add_argument("--ops", default=None,
                    help="comma-separated op names (default: all)")
    pv.add_argument("--dtypes", default=None,
                    help="comma-separated dtypes (default: each op's grid)")
    pv.add_argument("--backends", default=None,
                    help="comma-separated engines "
                         f"(default: {','.join(('numpy', 'blocked', 'blocked:7', 'reference', 'native', 'native:0:7'))})")
    pv.add_argument("--no-corpus", action="store_true",
                    help="skip replaying tests/corpus/verify/")
    pv.add_argument("--corpus-dir", default=None,
                    help="replay corpus from this directory instead")
    pv.add_argument("--export", default="table", choices=["table", "json"])
    pv.add_argument("-o", "--output", default=None,
                    help="write the export to a file instead of stdout")
    pv.add_argument("--artifact", default=None,
                    help="on divergence, write shrunken counterexamples "
                         "to this JSON file (CI uploads it)")
    pv.add_argument("--chaos-seed", type=int, default=None,
                    help="arm the distributed backend's shared pools with "
                         "seeded random worker kills during the run")
    pv.add_argument("--chaos-kill-prob", type=float, default=0.02,
                    help="per-shard-dispatch kill probability under "
                         "--chaos-seed")
    pv.set_defaults(func=_verify)

    ps = sub.add_parser(
        "serve",
        help="scan-as-a-service: asyncio server with segmented-scan "
             "request batching (see docs/serving.md)")
    ps.add_argument("--host", default="127.0.0.1")
    ps.add_argument("--port", type=int, default=8787,
                    help="TCP port (0 binds an ephemeral port)")
    ps.add_argument("--backend", default=None,
                    help="execution backend spec (numpy, blocked, native, "
                         "distributed:<workers>:<chunks>, ...); default "
                         "honors REPRO_BACKEND")
    ps.add_argument("--window", type=float, default=0.002,
                    help="batching window in seconds")
    ps.add_argument("--max-batch", type=int, default=64,
                    help="most requests coalesced into one mega-op")
    ps.add_argument("--max-pending", type=int, default=1024,
                    help="admission bound before 'overloaded' errors")
    ps.add_argument("--cache", type=int, default=1024,
                    help="result-cache entries (0 disables)")
    ps.add_argument("--budget", type=int, default=None,
                    help="per-tenant step budget (default: unmetered)")
    ps.add_argument("--refill", type=float, default=0.0,
                    help="steps per second the budget refills")
    ps.add_argument("--selfcheck", action="store_true",
                    help="start, drive a concurrent workload, verify "
                         "against the serial machine, print SLOs, exit")
    ps.set_defaults(func=_serve)

    pf = sub.add_parser("faults",
                        help="fault injection: detect / mask / degrade")
    pf.add_argument("mode", nargs="?", choices=["demo", "campaign"],
                    default="demo")
    pf.add_argument("--trials", type=int, default=200)
    pf.add_argument("--n", type=int, default=8,
                    help="circuit leaves (power of two)")
    pf.add_argument("--width", type=int, default=8)
    pf.add_argument("--seed", type=int, default=0)
    pf.set_defaults(func=_faults)

    args = parser.parse_args(argv)
    try:
        rc = args.func(args)
    except BrokenPipeError:  # e.g. `python -m repro table4 | head`
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    return int(rc or 0)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
