"""A process-wide metrics registry: counters, gauges, histograms.

The cost model answers "how many program steps"; metrics answer the
operational questions around it — how many scans ran in this process, how
big they were, how many faults the checked machines detected — without any
caller having to thread a handle through every layer.  The design follows
the usual in-process metrics shape (Prometheus client, ``torch``'s
counters): named instruments live in one :class:`MetricsRegistry`,
publishers keep a cheap handle obtained once, and readers take an
immutable :meth:`~MetricsRegistry.snapshot`.

Publishers in this repository:

* :mod:`repro.machine` — ``machine.instances``, ``scan.invocations``
  and the ``scan.n`` histogram of scan lengths;
* :mod:`repro.backends` — ``backend.<name>.ops``, every primitive
  executed per backend;
* :mod:`repro.faults` — ``faults.injected`` / ``detected`` / ``retried``
  / ``corrected`` / ``degraded_scans``.

Instruments are identity-stable: :meth:`MetricsRegistry.reset` zeroes
values but keeps the objects, so handles cached at import or
construction time never go stale.  None of this feeds back into step
charges — metrics are observers, and disabling them (or resetting the
registry) can never change a result or a step count.
"""
from __future__ import annotations

import math
from typing import Dict, Iterator, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "registry",
]

Number = Union[int, float]


class Counter:
    """A monotonically increasing count (invocations, faults, bytes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease "
                             f"(inc({amount}))")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A value that goes up and down (active machines, last chunk size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """A distribution summarized by count/sum/min/max plus power-of-two
    buckets (bucket ``k`` counts observations with ``2^(k-1) < x <= 2^k``;
    non-positive observations land in bucket 0).

    Power-of-two buckets suit this repository's one interesting
    distribution — vector lengths — where "how many scans were shorter
    than a cache line / a chunk / a board" is exactly a question about
    binary orders of magnitude.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.reset()

    def reset(self) -> None:
        self.count: int = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        k = 0 if value <= 1 else math.ceil(math.log2(value))
        self.buckets[k] = self.buckets.get(k, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Histogram({self.name!r}, count={self.count}, "
                f"mean={self.mean:.1f})")


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named instruments, created on first use and stable thereafter.

    ``counter(name)`` / ``gauge(name)`` / ``histogram(name)`` get-or-create;
    asking for an existing name with a different type raises, since two
    publishers disagreeing about what ``scan.invocations`` *is* would
    corrupt both.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def _get(self, name: str, cls) -> Instrument:
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name)
            self._instruments[name] = inst
        elif type(inst) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}")
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)  # type: ignore[return-value]

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __iter__(self) -> Iterator[Instrument]:
        return iter(self._instruments.values())

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def reset(self) -> None:
        """Zero every instrument.  Objects survive (publishers cache
        handles), only values are cleared."""
        for inst in self._instruments.values():
            inst.reset()

    def snapshot(self) -> Dict[str, dict]:
        """An immutable, JSON-ready reading of every instrument."""
        out: Dict[str, dict] = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Counter):
                out[name] = {"type": "counter", "value": inst.value}
            elif isinstance(inst, Gauge):
                out[name] = {"type": "gauge", "value": inst.value}
            else:
                out[name] = {
                    "type": "histogram",
                    "count": inst.count,
                    "total": inst.total,
                    "min": inst.min,
                    "max": inst.max,
                    "mean": inst.mean,
                    "buckets": {str(k): v
                                for k, v in sorted(inst.buckets.items())},
                }
        return out


#: the process-wide registry every layer publishes into
registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (one per interpreter)."""
    return registry
