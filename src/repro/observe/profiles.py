"""Profile harness: run a Table 1 algorithm under full observation.

One call — :func:`run_profile` — builds a deterministic seeded workload
for a named algorithm, runs it on a fresh :class:`~repro.machine.Machine`
with a :class:`~repro.observe.spans.Profiler` attached, and returns a
:class:`Profile`: exact step totals, the primitive mix, the span tree
(wall time, backend ops, byte estimates) and the metrics-registry delta.

The workload registry below covers a representative slice of the paper's
Table 1 — two sorts, the merge, four graph algorithms, list ranking,
tree contraction, computational geometry and line drawing — each with a
fixed problem size and seed so that **step counts are exactly
reproducible** across runs, machines and execution backends.  That
reproducibility is what the golden-baseline harness
(:mod:`repro.observe.baselines`, ``tools/update_baselines.py``,
``tests/test_profile_baselines.py``) turns into a regression gate, and
what ``python -m repro profile`` exposes interactively.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from .exporters import render_table, to_chrome_trace, to_json
from .metrics import registry as _registry
from .spans import Profiler, Span, span

__all__ = [
    "Profile",
    "Workload",
    "WORKLOADS",
    "available_algorithms",
    "run_profile",
]


@dataclass(frozen=True)
class Workload:
    """A deterministic, seedable run of one algorithm.

    ``run(machine, n, rng)`` must charge all its work to ``machine`` and
    verify its own answer (host-side, uncharged) — a baseline pinned to a
    wrong answer would be worse than no baseline.
    """

    name: str
    default_n: int
    run: Callable
    #: extra Machine(...) keyword arguments the algorithm requires
    machine_kwargs: dict = field(default_factory=dict)
    description: str = ""


@dataclass
class Profile:
    """Everything one profiled run observed (see the exporters)."""

    algorithm: str
    model: str
    backend: str
    n: int
    seed: int
    steps: int
    ops: int
    by_kind: dict[str, int]
    wall_seconds: float
    root: Span
    metrics: dict[str, dict]

    def render_table(self) -> str:
        return render_table(self)

    def to_json(self, **kwargs) -> str:
        return to_json(self, **kwargs)

    def to_chrome_trace(self) -> dict:
        return to_chrome_trace(self)


# --------------------------------------------------------------------- #
# Workload definitions (deterministic: all randomness flows from `rng`
# and the machine's own seeded generator)
# --------------------------------------------------------------------- #

def _run_radix_sort(m, n: int, rng: np.random.Generator) -> None:
    from ..algorithms import split_radix_sort

    data = rng.integers(0, 1 << 8, n)
    with span("sort"):
        out = split_radix_sort(m.vector(data), number_of_bits=8)
    assert np.array_equal(out.data, np.sort(data))


def _run_quicksort(m, n: int, rng: np.random.Generator) -> None:
    from ..algorithms import quicksort

    data = rng.integers(0, 10**6, n)
    with span("sort"):
        out = quicksort(m.vector(data))
    assert np.array_equal(out.data, np.sort(data))


def _run_halving_merge(m, n: int, rng: np.random.Generator) -> None:
    from ..algorithms import halving_merge

    a = np.sort(rng.integers(0, 10**6, n // 2))
    b = np.sort(rng.integers(0, 10**6, n // 2))
    with span("merge"):
        merged, _flags = halving_merge(m.vector(a), m.vector(b))
    assert np.array_equal(merged.data, np.sort(np.concatenate([a, b])))


def _random_graph(rng: np.random.Generator, n: int):
    from ..graph import random_connected_graph

    return random_connected_graph(rng, n, 2 * n)


def _run_mst(m, n: int, rng: np.random.Generator) -> None:
    from ..algorithms import minimum_spanning_tree

    edges, weights = _random_graph(rng, n)
    with span("mst"):
        result = minimum_spanning_tree(m, n, edges, weights)
    assert len(result.edge_ids) == n - 1


def _run_connected_components(m, n: int, rng: np.random.Generator) -> None:
    from ..algorithms import connected_components

    edges, _ = _random_graph(rng, n)
    with span("components"):
        result = connected_components(m, n, edges)
    assert result.num_components == 1  # the generator guarantees connectivity


def _run_mis(m, n: int, rng: np.random.Generator) -> None:
    from ..algorithms import maximal_independent_set

    edges, _ = _random_graph(rng, n)
    with span("mis"):
        result = maximal_independent_set(m, n, edges)
    in_set = result.in_set
    assert in_set.any()
    assert not (in_set[edges[:, 0]] & in_set[edges[:, 1]]).any()


def _run_list_ranking(m, n: int, rng: np.random.Generator) -> None:
    from ..algorithms import list_rank

    order = rng.permutation(n)
    nxt = np.full(n, -1, dtype=np.int64)
    nxt[order[:-1]] = order[1:]
    with span("rank"):
        ranks = list_rank(m.vector(nxt))
    expected = np.empty(n, dtype=np.int64)
    expected[order] = n - 1 - np.arange(n)  # rank = distance to list end
    assert np.array_equal(ranks.data, expected)


def _run_tree_contraction(m, n: int, rng: np.random.Generator) -> None:
    from ..algorithms.tree_contraction import ExpressionTree, tree_contract

    tree = ExpressionTree.random(rng, n)
    with span("contract"):
        value, _ = tree_contract(m, tree)
    assert value == tree.eval_serial()


def _run_convex_hull(m, n: int, rng: np.random.Generator) -> None:
    from ..algorithms import convex_hull

    points = rng.integers(-10**6, 10**6, size=(n, 2))
    with span("hull"):
        result = convex_hull(m, points)
    assert len(result.hull_indices) >= 3


def _run_line_drawing(m, n: int, rng: np.random.Generator) -> None:
    from ..algorithms import draw_lines

    # n random segments on a 64x64 grid (plus Figure 9's three, for old
    # times' sake, when n allows)
    endpoints = rng.integers(0, 64, size=(n, 4)).tolist()
    with span("draw"):
        drawing = draw_lines(m, endpoints)
    assert (drawing.counts.data > 0).all()


def _run_csv_split(m, n: int, rng: np.random.Generator) -> None:
    from ..algorithms.text import parse_csv

    letters = np.frombuffer(b"abcdefghijklmnopqrstuvwxyz", dtype=np.uint8)
    fields = []
    for _ in range(n):
        k = int(rng.integers(0, 9))
        fields.append(bytes(rng.choice(letters, size=k)) if k else b"")
    rows = [fields[i:i + 8] for i in range(0, n, 8)]
    text = b"\n".join(b",".join(r) for r in rows)
    with span("parse_csv"):
        result = parse_csv(m, text)
    assert result.rows() == [r.split(b",") for r in text.split(b"\n")]


def _run_compression(m, n: int, rng: np.random.Generator) -> None:
    from ..algorithms.codecs import (delta_decode, delta_encode, rle_decode,
                                     rle_encode)

    # piecewise-linear signal: the deltas are long constant runs, so the
    # delta+RLE pipeline actually compresses (asserted below)
    slopes = np.repeat(rng.integers(-3, 4, size=n // 8 + 1), 8)[:n]
    data = np.cumsum(slopes)
    with span("encode"):
        with span("delta"):
            deltas = delta_encode(m.vector(data))
        with span("rle"):
            values, lengths = rle_encode(deltas)
    assert len(values) < max(n // 2, 1)
    with span("decode"):
        with span("unrle"):
            expanded = rle_decode(values, lengths)
        with span("undelta"):
            out = delta_decode(expanded)
    assert np.array_equal(out.data, data)


def _run_spmv(m, n: int, rng: np.random.Generator) -> None:
    from ..algorithms import SparseMatrix

    dense = np.where(rng.random((n, n)) < 4.0 / n,
                     rng.integers(1, 10, size=(n, n)), 0)
    x = rng.integers(-5, 6, size=n)
    with span("build"):
        matrix = SparseMatrix(m, dense)
    with span("matvec"):
        y = matrix.matvec(x)
    assert np.array_equal(y.data, dense @ x)


WORKLOADS: dict[str, Workload] = {
    w.name: w for w in (
        Workload("radix_sort", 512, _run_radix_sort,
                 description="split radix sort, 8-bit keys (Sec 4.1)"),
        Workload("quicksort", 512, _run_quicksort,
                 description="segmented parallel quicksort (Sec 1)"),
        Workload("halving_merge", 512, _run_halving_merge,
                 description="halving merge of two sorted halves (Sec 10)"),
        Workload("mst", 128, _run_mst,
                 description="minimum spanning tree, random-mate (Sec 6)"),
        Workload("connected_components", 128, _run_connected_components,
                 description="connected components (Sec 6)"),
        Workload("maximal_independent_set", 128, _run_mis,
                 description="Luby's maximal independent set"),
        Workload("list_ranking", 1024, _run_list_ranking,
                 description="pointer-jumping list ranking (Sec 8)"),
        Workload("tree_contraction", 256, _run_tree_contraction,
                 description="expression-tree contraction (Sec 8)"),
        Workload("convex_hull", 256, _run_convex_hull,
                 description="quickhull on integer points (Sec 7)"),
        Workload("line_drawing", 16, _run_line_drawing,
                 machine_kwargs={"allow_concurrent_write": True},
                 description="grid line drawing (Sec 5, Figure 9)"),
        Workload("csv_split", 256, _run_csv_split,
                 description="CSV rows/fields via segmented field splitting"),
        Workload("compression", 1024, _run_compression,
                 description="delta + run-length codec round trip"),
        Workload("spmv", 128, _run_spmv,
                 description="sparse matrix-vector product (Sec 5, Fig 6)"),
    )
}


def available_algorithms() -> list[str]:
    """Profileable algorithm names, sorted."""
    return sorted(WORKLOADS)


# --------------------------------------------------------------------- #
# The harness
# --------------------------------------------------------------------- #

def _metrics_delta(before: dict, after: dict) -> dict[str, dict]:
    """Per-run registry activity: counter/histogram movement during the
    profiled block (gauges are point-in-time and reported as-is)."""
    out: dict[str, dict] = {}
    for name, now in after.items():
        prev = before.get(name)
        if now["type"] == "counter":
            delta = now["value"] - (prev["value"] if prev else 0)
            if delta:
                out[name] = {"type": "counter", "value": delta}
        elif now["type"] == "gauge":
            out[name] = dict(now)
        else:
            count = now["count"] - (prev["count"] if prev else 0)
            if count:
                out[name] = {
                    "type": "histogram",
                    "count": count,
                    "total": now["total"] - (prev["total"] if prev else 0),
                }
    return out


def run_profile(algorithm: str, *, backend=None, model: str = "scan",
                n: Optional[int] = None, seed: int = 0,
                num_processors: Optional[int] = None) -> Profile:
    """Profile one named workload and return the full observation.

    ``backend`` accepts anything ``Machine(backend=...)`` does; ``model``
    / ``n`` / ``seed`` / ``num_processors`` parameterize the run.  Step
    totals depend only on (algorithm, model, n, seed, num_processors) —
    never on the backend — which is the invariant the baseline harness
    asserts.
    """
    from ..machine import Machine

    workload = WORKLOADS.get(algorithm)
    if workload is None:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of "
            f"{available_algorithms()}")
    size = n if n is not None else workload.default_n
    machine = Machine(model, seed=seed, backend=backend,
                      num_processors=num_processors,
                      **workload.machine_kwargs)
    rng = np.random.default_rng(seed)
    before = _registry.snapshot()
    profiler = Profiler()
    profiler.attach(machine)
    try:
        workload.run(machine, size, rng)
    finally:
        profiler.detach()
    after = _registry.snapshot()
    snap = machine.snapshot()
    return Profile(
        algorithm=algorithm,
        model=model,
        backend=machine.backend.name,
        n=size,
        seed=seed,
        steps=snap.steps,
        ops=snap.ops,
        by_kind=dict(sorted(snap.by_kind.items())),
        wall_seconds=profiler.root.wall_seconds,
        root=profiler.root,
        metrics=_metrics_delta(before, after),
    )
