"""repro.observe — the observability layer: spans, metrics, exporters.

Four concerns, one subsystem:

* **metrics** (:mod:`repro.observe.metrics`) — a process-wide registry of
  counters / gauges / histograms that :mod:`repro.machine`,
  :mod:`repro.backends` and :mod:`repro.faults` publish into;
* **spans** (:mod:`repro.observe.spans`) — hierarchical regions recording
  step charges by primitive kind, wall time, backend ops and byte
  estimates; :func:`span` / :func:`traced` are free no-ops when no
  profiler is attached, so algorithms stay permanently instrumented;
* **exporters** (:mod:`repro.observe.exporters`) — human table, JSON, and
  Chrome-trace (``chrome://tracing``) renderings of a profile;
* **profiles & baselines** (:mod:`repro.observe.profiles`,
  :mod:`repro.observe.baselines`) — ``run_profile`` executes a seeded
  Table 1 workload under full observation, and the committed
  ``baselines/*.json`` golden profiles gate step regressions (see
  ``tools/update_baselines.py`` and ``docs/observability.md``).

The legacy :mod:`repro.machine.trace` API (``trace`` / ``Trace``) is a
back-compat shim over :class:`~repro.observe.spans.Profiler`.

Everything here observes; nothing here charges.  Step totals and results
are bit-identical with or without instrumentation attached — a property
the differential suite in ``tests/test_backends.py`` enforces.
"""
from __future__ import annotations

from .exporters import render_table, to_chrome_trace, to_json, to_json_dict
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    registry,
)
from .spans import (
    ChargeEvent,
    Profiler,
    Span,
    current_profiler,
    profile,
    span,
    traced,
)

__all__ = [
    "ChargeEvent",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Profile",
    "Profiler",
    "Span",
    "available_algorithms",
    "current_profiler",
    "get_registry",
    "profile",
    "registry",
    "render_table",
    "run_profile",
    "span",
    "to_chrome_trace",
    "to_json",
    "to_json_dict",
    "traced",
]

# `profile`/`baselines` import the algorithm layer, which imports the
# machine layer, which imports this package for its metrics handles —
# so the heavyweight half of the namespace loads lazily, on first touch.
_LAZY = {
    "Profile": "profiles",
    "Workload": "profiles",
    "WORKLOADS": "profiles",
    "available_algorithms": "profiles",
    "run_profile": "profiles",
}


def __getattr__(name: str):
    modname = _LAZY.get(name)
    if modname is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{modname}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
