"""Golden profile baselines: committed step profiles as a regression gate.

A *baseline* is the backend-independent core of a
:class:`~repro.observe.profiles.Profile` — algorithm, model, problem size,
seed, exact step total, primitive-invocation count and the per-kind
primitive mix — serialized to JSON and committed under ``baselines/`` at
the repository root.  ``tools/update_baselines.py`` regenerates them;
``tests/test_profile_baselines.py`` re-runs every committed baseline on
multiple execution backends and demands **exact** equality, so

* a cost-model change (a charge formula, a primitive's cost) fails the
  harness until the baselines are regenerated in the same commit —
  making the diff reviewable next to the code that caused it; and
* a backend change can never silently alter step accounting, because the
  same baseline must hold on every backend.

Wall-clock and byte figures deliberately never enter a baseline: they
are machine-dependent observations, reported by the exporters but not
gated on.
"""
from __future__ import annotations

import json
import os
import pathlib
from typing import Optional

__all__ = [
    "baseline_from_profile",
    "baseline_path",
    "compare_profile",
    "default_baseline_dir",
    "load_baseline",
    "load_baselines",
    "write_baseline",
]

#: environment override for the baseline directory
BASELINE_DIR_ENV_VAR = "REPRO_BASELINE_DIR"

_SCHEMA = "repro.observe.baseline/v1"


def default_baseline_dir() -> pathlib.Path:
    """``$REPRO_BASELINE_DIR`` if set, else ``baselines/`` at the
    repository root (resolved relative to this source tree)."""
    env = os.environ.get(BASELINE_DIR_ENV_VAR)
    if env:
        return pathlib.Path(env)
    # src/repro/observe/baselines.py -> repo root is three parents above src/
    return pathlib.Path(__file__).resolve().parents[3] / "baselines"


def baseline_path(algorithm: str,
                  directory: Optional[pathlib.Path] = None) -> pathlib.Path:
    d = pathlib.Path(directory) if directory else default_baseline_dir()
    return d / f"{algorithm}.json"


def baseline_from_profile(profile) -> dict:
    """The gated subset of a profile (everything backend-independent)."""
    return {
        "schema": _SCHEMA,
        "algorithm": profile.algorithm,
        "model": profile.model,
        "n": profile.n,
        "seed": profile.seed,
        "steps": profile.steps,
        "ops": profile.ops,
        "by_kind": dict(sorted(profile.by_kind.items())),
    }


def write_baseline(profile, directory: Optional[pathlib.Path] = None
                   ) -> pathlib.Path:
    """Serialize ``profile``'s baseline next to its siblings; returns the
    path written."""
    path = baseline_path(profile.algorithm, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(baseline_from_profile(profile), indent=2,
                               sort_keys=False) + "\n")
    return path


def load_baseline(algorithm: str,
                  directory: Optional[pathlib.Path] = None) -> dict:
    path = baseline_path(algorithm, directory)
    data = json.loads(path.read_text())
    if data.get("schema") != _SCHEMA:
        raise ValueError(f"{path} has schema {data.get('schema')!r}, "
                         f"expected {_SCHEMA!r}")
    return data


def load_baselines(directory: Optional[pathlib.Path] = None
                   ) -> dict[str, dict]:
    """All committed baselines, keyed by algorithm name."""
    d = pathlib.Path(directory) if directory else default_baseline_dir()
    out: dict[str, dict] = {}
    for path in sorted(d.glob("*.json")):
        data = json.loads(path.read_text())
        if data.get("schema") == _SCHEMA:
            out[data["algorithm"]] = data
    return out


def compare_profile(profile, baseline: dict) -> list[str]:
    """Exact comparison; returns human-readable mismatches (empty = pass).

    Everything in the baseline must match the fresh profile exactly:
    metadata (so the harness is running the workload the baseline was
    recorded for), the step total, the invocation count, and the
    primitive mix kind by kind.
    """
    problems: list[str] = []
    for key in ("algorithm", "model", "n", "seed"):
        got, want = getattr(profile, key), baseline[key]
        if got != want:
            problems.append(f"{key}: profile ran {got!r}, baseline "
                            f"recorded {want!r}")
    if problems:  # different workload: counts are not comparable
        return problems
    if profile.steps != baseline["steps"]:
        problems.append(f"steps: {profile.steps} != baseline "
                        f"{baseline['steps']} "
                        f"({profile.steps - baseline['steps']:+d})")
    if profile.ops != baseline["ops"]:
        problems.append(f"ops: {profile.ops} != baseline {baseline['ops']} "
                        f"({profile.ops - baseline['ops']:+d})")
    mix, want_mix = profile.by_kind, baseline["by_kind"]
    for kind in sorted(set(mix) | set(want_mix)):
        got, want = mix.get(kind, 0), want_mix.get(kind, 0)
        if got != want:
            problems.append(f"by_kind[{kind}]: {got} != baseline {want} "
                            f"({got - want:+d})")
    return problems
