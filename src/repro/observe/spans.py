"""Hierarchical spans: where the steps, the time and the memory went.

A :class:`Profiler` attaches to a :class:`~repro.machine.Machine` at its
two existing observation points — the step counter's listener hook and
the execution backend's per-op observer hook — and attributes everything
that flows through them to the innermost open **span**::

    m = Machine("scan")
    with profile(m) as p:
        with p.span("sort"):
            split_radix_sort(m.vector(data))
        with p.span("merge"):
            halving_merge(...)
    for s, depth in p.root.walk():
        print("  " * depth, s.name, s.steps, s.wall_seconds)

Each span records, exclusively of its children: program-step charges
broken down by primitive kind, primitive invocation counts, wall-clock
time, backend op counts / op wall time / result bytes, and the peak
temporary-byte estimate reported by the backend
(:meth:`repro.backends.Backend.temp_bytes`).  The attached backend's
identity is stamped on the profiler, so a report always says *which*
engine produced its numbers.

Library code can mark phases without ever seeing a profiler:
:func:`span` (module-level) and the :func:`traced` decorator look up the
innermost active profiler and are exact no-ops when none is attached —
instrumentation is free when nobody is watching, and never touches step
charges or results either way (the cost-transparency suite in
``tests/test_backends.py`` pins this).
"""
from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, NamedTuple, Optional

__all__ = [
    "ChargeEvent",
    "Profiler",
    "Span",
    "current_profiler",
    "profile",
    "span",
    "traced",
]


class ChargeEvent(NamedTuple):
    """One step charge as seen by a profiler: kind, cost, owning span."""

    kind: str
    cost: int
    span: "Span"


@dataclass
class Span:
    """One labeled region of execution and everything charged inside it.

    All stored figures are **exclusive** of children (``self_*``);
    inclusive totals walk the subtree on demand, so nesting never double
    counts.
    """

    name: str
    parent: Optional["Span"] = field(default=None, repr=False)
    children: list["Span"] = field(default_factory=list, repr=False)
    #: step charges by primitive kind, exclusive of child spans
    self_by_kind: dict[str, int] = field(default_factory=dict)
    #: primitive invocations charged directly in this span
    self_ops: int = 0
    #: seconds since the profiler's epoch (None until entered/exited)
    t_start: Optional[float] = None
    t_end: Optional[float] = None
    #: backend ops executed directly in this span
    backend_ops: int = 0
    #: wall seconds spent inside backend primitives in this span
    backend_seconds: float = 0.0
    #: bytes of primitive results materialized in this span
    out_bytes: int = 0
    #: largest single-op temporary-byte estimate seen in this span
    peak_temp_bytes: int = 0

    # ------------------------------------------------------------------ #

    @property
    def self_steps(self) -> int:
        return sum(self.self_by_kind.values())

    @property
    def steps(self) -> int:
        """Inclusive program steps: this span plus all descendants."""
        return self.self_steps + sum(c.steps for c in self.children)

    @property
    def ops(self) -> int:
        """Inclusive primitive invocations."""
        return self.self_ops + sum(c.ops for c in self.children)

    @property
    def wall_seconds(self) -> float:
        """Wall-clock duration (0.0 while still open)."""
        if self.t_start is None or self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    def by_kind(self) -> dict[str, int]:
        """Inclusive step charges by primitive kind."""
        out = dict(self.self_by_kind)
        for c in self.children:
            for k, v in c.by_kind().items():
                out[k] = out.get(k, 0) + v
        return out

    def walk(self) -> Iterator[tuple["Span", int]]:
        """Depth-first ``(span, depth)`` over this span and descendants."""
        stack: list[tuple[Span, int]] = [(self, 0)]
        while stack:
            node, depth = stack.pop()
            yield node, depth
            for child in reversed(node.children):
                stack.append((child, depth + 1))

    def to_dict(self) -> dict:
        """JSON-ready rendering (recursive; used by the exporters)."""
        return {
            "name": self.name,
            "steps": self.steps,
            "self_steps": self.self_steps,
            "ops": self.ops,
            "by_kind": dict(sorted(self.by_kind().items())),
            "t_start": self.t_start,
            "t_end": self.t_end,
            "wall_seconds": self.wall_seconds,
            "backend_ops": self.backend_ops,
            "backend_seconds": self.backend_seconds,
            "out_bytes": self.out_bytes,
            "peak_temp_bytes": self.peak_temp_bytes,
            "children": [c.to_dict() for c in self.children],
        }


#: innermost-last stack of attached profilers (module-level spans and the
#: ``traced`` decorator route here; plain lists — no threading in scope)
_ACTIVE: list["Profiler"] = []


def current_profiler() -> Optional["Profiler"]:
    """The innermost attached profiler, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


class Profiler:
    """Records spans, charges and backend ops for one machine.

    Use via :func:`profile` (attach for a block) or construct detached
    and call :meth:`attach` / :meth:`detach` explicitly.  Attaching is
    purely observational: listeners are appended to the machine's
    existing hooks and removed on detach, so steps and results are
    bit-identical with or without a profiler.
    """

    def __init__(self, *, clock: Callable[[], float] = time.perf_counter
                 ) -> None:
        self._clock = clock
        self._epoch = clock()
        self.root = Span("(root)", t_start=0.0)
        self._stack: list[Span] = [self.root]
        #: flat log of every charge seen, in order (the trace shim's data)
        self.events: list[ChargeEvent] = []
        self.machine = None
        #: name of the attached machine's backend ("?" before attach)
        self.backend_name: str = "?"

    # ------------------------------ wiring ----------------------------- #

    def attach(self, machine) -> None:
        if self.machine is not None:
            raise RuntimeError("profiler is already attached")
        self.machine = machine
        self.backend_name = machine.backend.name
        machine.counter.listeners.append(self._on_charge)
        machine.backend.observers.append(self._on_backend_op)
        _ACTIVE.append(self)

    def detach(self) -> None:
        if self.machine is None:
            return
        self.machine.counter.listeners.remove(self._on_charge)
        self.machine.backend.observers.remove(self._on_backend_op)
        _ACTIVE.remove(self)
        self.machine = None
        if self.root.t_end is None:
            self.root.t_end = self._now()

    def _now(self) -> float:
        return self._clock() - self._epoch

    # ----------------------------- recording --------------------------- #

    def _on_charge(self, kind: str, cost: int) -> None:
        cur = self._stack[-1]
        cur.self_by_kind[kind] = cur.self_by_kind.get(kind, 0) + cost
        cur.self_ops += 1
        self.events.append(ChargeEvent(kind, cost, cur))

    def _on_backend_op(self, event) -> None:
        cur = self._stack[-1]
        cur.backend_ops += 1
        cur.backend_seconds += event.seconds
        cur.out_bytes += event.out_bytes
        if event.temp_bytes > cur.peak_temp_bytes:
            cur.peak_temp_bytes = event.temp_bytes

    # ------------------------------- spans ------------------------------ #

    @contextmanager
    def span(self, name: str):
        """Open a child span of the current span for the block."""
        s = Span(name, parent=self._stack[-1], t_start=self._now())
        self._stack[-1].children.append(s)
        self._stack.append(s)
        try:
            yield s
        finally:
            s.t_end = self._now()
            self._stack.pop()

    @property
    def current_span(self) -> Span:
        return self._stack[-1]

    # ----------------------------- summaries ---------------------------- #

    @property
    def total_steps(self) -> int:
        return self.root.steps

    def by_kind(self) -> dict[str, int]:
        return self.root.by_kind()

    def close(self) -> None:
        """Stamp the root span's end time (idempotent)."""
        if self.root.t_end is None:
            self.root.t_end = self._now()


@contextmanager
def profile(machine):
    """Attach a fresh :class:`Profiler` to ``machine`` for the block."""
    p = Profiler()
    p.attach(machine)
    try:
        yield p
    finally:
        p.detach()


@contextmanager
def span(name: str):
    """Label a phase against the innermost active profiler, if any.

    Library and algorithm code uses this form: with no profiler attached
    it opens nothing and costs (almost) nothing, so algorithms can stay
    permanently instrumented.
    """
    p = current_profiler()
    if p is None:
        yield None
    else:
        with p.span(name) as s:
            yield s


def traced(name: Optional[str] = None):
    """Decorator form of :func:`span`: the whole call is one span, named
    after the function unless ``name`` is given."""
    def decorate(fn: Callable) -> Callable:
        label = name or fn.__name__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with span(label):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
