"""Exporters: one profile, three audiences.

* :func:`render_table` — a human-readable report for terminals, the
  modern replacement for ``Trace.report()``;
* :func:`to_json` — the machine-readable form the golden-baseline
  harness diffs (:mod:`repro.observe.baselines`);
* :func:`to_chrome_trace` — the Trace Event Format consumed by
  ``chrome://tracing`` / Perfetto: every span becomes a complete
  (``"ph": "X"``) event with step counts and byte estimates in its
  ``args``, so a flame graph of a scan algorithm is one
  ``python -m repro profile <algo> --export chrome`` away.

All three take the :class:`~repro.observe.profiles.Profile` produced by
:func:`repro.observe.profiles.run_profile` (anything with the same
attributes works — the exporters read, never compute).
"""
from __future__ import annotations

import json
from typing import Any

from .spans import Span

__all__ = ["render_table", "to_chrome_trace", "to_json", "to_json_dict"]


def _fmt_bytes(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024
    return f"{n}B"  # pragma: no cover - unreachable


def render_table(profile) -> str:
    """The terminal report: header, per-kind mix, then the span tree."""
    lines = [
        f"profile: {profile.algorithm}  (model={profile.model}, "
        f"backend={profile.backend}, n={profile.n}, seed={profile.seed})",
        f"total:   {profile.steps} program steps in {profile.ops} primitive "
        f"invocations, {profile.wall_seconds * 1e3:.1f} ms wall",
    ]
    total = profile.steps or 1
    lines.append("primitive mix:")
    for kind, steps in sorted(profile.by_kind.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {kind:<16} {steps:>10} steps ({100.0 * steps / total:5.1f}%)")
    lines.append("spans (steps are inclusive of children):")
    lines.append(f"  {'span':<28} {'steps':>10} {'%':>6} {'ops':>8} "
                 f"{'wall ms':>9} {'peak tmp':>9}")
    for node, depth in profile.root.walk():
        if node.name == "(root)" and not node.self_ops and not node.children:
            continue
        label = ("  " * depth + node.name)[:28]
        lines.append(
            f"  {label:<28} {node.steps:>10} "
            f"{100.0 * node.steps / total:>5.1f}% {node.ops:>8} "
            f"{node.wall_seconds * 1e3:>9.2f} "
            f"{_fmt_bytes(node.peak_temp_bytes):>9}")
    return "\n".join(lines)


def to_json_dict(profile) -> dict[str, Any]:
    """The canonical machine-readable form (also the baseline payload)."""
    return {
        "schema": "repro.observe.profile/v1",
        "algorithm": profile.algorithm,
        "model": profile.model,
        "backend": profile.backend,
        "n": profile.n,
        "seed": profile.seed,
        "steps": profile.steps,
        "ops": profile.ops,
        "by_kind": dict(sorted(profile.by_kind.items())),
        "wall_seconds": profile.wall_seconds,
        "spans": profile.root.to_dict(),
        "metrics": profile.metrics,
    }


def to_json(profile, *, indent: int = 2) -> str:
    return json.dumps(to_json_dict(profile), indent=indent, sort_keys=False)


def _span_events(root: Span, *, pid: int, tid: int) -> list[dict]:
    events = []
    for node, _depth in root.walk():
        if node.t_start is None:
            continue
        t_end = node.t_end if node.t_end is not None else node.t_start
        events.append({
            "name": node.name,
            "cat": "span",
            "ph": "X",
            "ts": node.t_start * 1e6,       # trace format wants microseconds
            "dur": (t_end - node.t_start) * 1e6,
            "pid": pid,
            "tid": tid,
            "args": {
                "steps": node.steps,
                "self_steps": node.self_steps,
                "ops": node.ops,
                "by_kind": dict(sorted(node.by_kind().items())),
                "backend_ops": node.backend_ops,
                "out_bytes": node.out_bytes,
                "peak_temp_bytes": node.peak_temp_bytes,
            },
        })
    return events


def to_chrome_trace(profile) -> dict[str, Any]:
    """A Trace Event Format document (load in ``chrome://tracing``).

    Spans are complete events on one thread track; process/thread
    metadata name the track after the algorithm and backend so several
    exported traces stay distinguishable when loaded together.
    """
    pid, tid = 1, 1
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": tid,
         "args": {"name": f"repro profile: {profile.algorithm}"}},
        {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
         "args": {"name": f"{profile.model} machine on "
                          f"{profile.backend} backend"}},
    ]
    events.extend(_span_events(profile.root, pid=pid, tid=tid))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "algorithm": profile.algorithm,
            "model": profile.model,
            "backend": profile.backend,
            "n": profile.n,
            "steps": profile.steps,
        },
    }
