"""Seeded fault-injection campaigns over the scan circuits and machine.

A campaign answers the quantitative question behind the detection lattice:
*of all single-bit flips, how many does each scheme catch?*  Every trial
draws one uniformly random flip (:func:`~repro.faults.random_tree_fault_plan`)
from its own seed, runs one scan under the chosen protection scheme, and
classifies the outcome against a fault-free golden run:

========== ================= =======================================
outcome    output correct?   checker flagged?
========== ================= =======================================
no_effect  yes               no   (the flip landed on dead state)
masked     yes               yes  (TMR out-voted it / false alarm)
detected   no                yes  (wrong result, but *known* wrong)
silent     no                no   (wrong result, trusted — the bad case)
========== ================= =======================================

``coverage = 1 - silent/trials`` is the headline number; the acceptance
bar is >= 99% for the ``tmr+checksum`` scheme.  Campaigns are replayable:
the same ``base_seed`` always produces the same trial list.

:func:`run_machine_campaign` exercises the recovery layer instead: a
checked :class:`~repro.machine.Machine` whose injector corrupts scan
outputs, verifying that every injected fault is detected and retried away
and that the fault ledger reconciles.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import scans
from ..hardware.selfcheck import ChecksumTreeScanCircuit
from ..hardware.tmr import TMRTreeScanCircuit
from ..hardware.tree import MAX, PLUS, TreeScanCircuit
from ..machine.counters import FaultCounters
from ..machine.model import Machine
from .plan import FaultInjector, FaultPlan, PrimitiveFault, random_tree_fault_plan

__all__ = ["CIRCUIT_SCHEMES", "CampaignResult", "MachineCampaignResult",
           "run_circuit_campaign", "run_machine_campaign"]

#: protection schemes a circuit campaign can exercise, cheapest first
CIRCUIT_SCHEMES = ("unchecked", "checksum", "tmr", "tmr+checksum")


@dataclass
class CampaignResult:
    """Tally of one circuit fault-injection campaign."""

    scheme: str
    trials: int
    no_effect: int = 0
    masked: int = 0
    detected: int = 0
    silent: int = 0

    @property
    def coverage(self) -> float:
        """Fraction of trials that did *not* end in a silently wrong
        result (correct-or-flagged)."""
        if self.trials == 0:
            return 1.0
        return 1.0 - self.silent / self.trials

    def row(self) -> str:
        return (f"{self.scheme:<14} {self.trials:>7} {self.no_effect:>10} "
                f"{self.masked:>7} {self.detected:>9} {self.silent:>7} "
                f"{100.0 * self.coverage:>9.1f}%")

    @staticmethod
    def header() -> str:
        return (f"{'scheme':<14} {'trials':>7} {'no_effect':>10} "
                f"{'masked':>7} {'detected':>9} {'silent':>7} "
                f"{'coverage':>10}")


def _build(scheme: str, n_leaves: int, width: int, op: int, injector):
    if scheme == "unchecked":
        return TreeScanCircuit(n_leaves, width, op, injector=injector)
    if scheme == "checksum":
        return ChecksumTreeScanCircuit(n_leaves, width, op, injector=injector)
    if scheme == "tmr":
        return TMRTreeScanCircuit(n_leaves, width, op, injector=injector)
    if scheme == "tmr+checksum":
        return TMRTreeScanCircuit(n_leaves, width, op, injector=injector,
                                  checksum=True)
    raise ValueError(f"unknown scheme {scheme!r}; "
                     f"expected one of {CIRCUIT_SCHEMES}")


def run_circuit_campaign(scheme: str, *, n_leaves: int = 8, width: int = 8,
                         trials: int = 200, op: int = PLUS,
                         base_seed: int = 0) -> CampaignResult:
    """Inject one random single-bit flip per trial into a scan circuit
    protected by ``scheme`` and classify every outcome.

    TMR schemes aim each trial's fault at replica ``seed % 3``, so the
    campaign exercises all three copies.  Deterministic in ``base_seed``.
    """
    result = CampaignResult(scheme=scheme, trials=trials)
    golden_circuit = TreeScanCircuit(n_leaves, width, op)
    tmr = scheme.startswith("tmr")
    for t in range(trials):
        seed = base_seed + t
        rng = np.random.default_rng(seed)
        vals = rng.integers(0, 1 << width, size=n_leaves)
        golden, _ = golden_circuit.scan(vals)

        replica = seed % 3 if tmr else 0
        plan = random_tree_fault_plan(seed, n_leaves=n_leaves, width=width,
                                     replica=replica)
        injector = FaultInjector(plan)
        circuit = _build(scheme, n_leaves, width, op, injector)
        if scheme == "unchecked":
            out, _ = circuit.scan(vals)
            flagged = False
        elif scheme == "checksum":
            out, _, ok = circuit.scan(vals)
            flagged = not ok
        else:
            out, _, stats = circuit.scan(vals)
            flagged = stats.flagged
        correct = bool(np.array_equal(np.asarray(out), golden))

        if correct and not flagged:
            result.no_effect += 1
        elif correct:
            result.masked += 1
        elif flagged:
            result.detected += 1
        else:
            result.silent += 1
    return result


@dataclass
class MachineCampaignResult:
    """Tally of one checked-machine recovery campaign."""

    trials: int
    correct_results: int = 0
    reconciled: int = 0
    degraded_machines: int = 0
    totals: FaultCounters = field(default_factory=FaultCounters)

    @property
    def all_correct(self) -> bool:
        return self.correct_results == self.trials

    @property
    def all_reconciled(self) -> bool:
        return self.reconciled == self.trials

    def summary(self) -> str:
        t = self.totals
        return (f"trials={self.trials} correct={self.correct_results} "
                f"reconciled={self.reconciled} "
                f"degraded_machines={self.degraded_machines} | "
                f"injected={t.injected} detected={t.detected} "
                f"retried={t.retried} corrected={t.corrected} "
                f"degraded_scans={t.degraded_scans} "
                f"undetected={t.undetected}")


def run_machine_campaign(*, trials: int = 50, n: int = 64,
                         base_seed: int = 0) -> MachineCampaignResult:
    """Recovery campaign: each trial builds a checked scan-model machine
    whose injector flips one bit in the output of its first primitive
    scan, then runs a ``plus_scan``.

    The corrupted attempt must be detected by the Section 3.4
    cross-verification and retried into a correct result, and every
    machine's fault ledger must reconcile
    (``injected == detected + masked + undetected``).
    """
    result = MachineCampaignResult(trials=trials)
    for t in range(trials):
        seed = base_seed + t
        rng = np.random.default_rng(seed)
        vals = rng.integers(0, 1 << 16, size=n)
        plan = FaultPlan(primitive_faults=(PrimitiveFault(
            op_index=0, kind="scan", element=seed % n, bit=seed % 63),),
            seed=seed)
        m = Machine("scan", reliability=True,
                    fault_injector=FaultInjector(plan))
        out = scans.plus_scan(m.vector(vals))

        expected = np.zeros(n, dtype=np.int64)
        np.cumsum(vals[:-1], out=expected[1:])
        if np.array_equal(out.data, expected):
            result.correct_results += 1
        fc = m.fault_counters
        if fc.reconciles():
            result.reconciled += 1
        if m.scan_unit_failed:
            result.degraded_machines += 1
        result.totals.injected += fc.injected
        result.totals.detected += fc.detected
        result.totals.masked += fc.masked
        result.totals.retried += fc.retried
        result.totals.corrected += fc.corrected
        result.totals.degraded_scans += fc.degraded_scans
    return result
