"""Fault injection and fault-tolerant execution (``repro.faults``).

The paper's machine treats scans as primitives it can *trust*; this
package asks what that trust costs.  It has three layers:

* **Injection** (:mod:`repro.faults.plan`): seeded, deterministic
  :class:`FaultPlan`/:class:`FaultInjector` pairs that flip state bits in
  the logic-level scan circuits, drop or misdirect router flits, and
  corrupt machine-primitive outputs — replayable bit-for-bit from a seed.
* **Detection & masking** (:mod:`repro.hardware.selfcheck`,
  :mod:`repro.hardware.tmr`, :func:`repro.core.simulate.sim_verify_plus_scan`):
  a cheap streaming checksum, a TMR voted circuit, and complete
  machine-level cross-verification, each charging its true extra cost.
* **Recovery** (:mod:`repro.faults.checked`): ``Machine(reliability=...)``
  verifies every primitive scan, retries on mismatch, and degrades to the
  EREW ``2⌈lg n⌉`` tree-scan costing once the scan unit is written off.

With no injector and no reliability policy attached, every hook is a
``None`` check: step and cycle counts stay bit-identical to the plain
simulators.  :mod:`repro.faults.campaign` quantifies coverage.
"""
from .campaign import (
    CIRCUIT_SCHEMES,
    CampaignResult,
    MachineCampaignResult,
    run_circuit_campaign,
    run_machine_campaign,
)
from .checked import reliable_max_scan, reliable_plus_scan
from .plan import (
    CIRCUIT_FIELDS,
    SEGMENTED_FIELDS,
    CircuitFault,
    FaultInjector,
    FaultPlan,
    PrimitiveFault,
    ReliabilityPolicy,
    RouterFault,
    ScanVerificationError,
    random_tree_fault_plan,
    tree_fifo_length,
)

__all__ = [
    "CIRCUIT_FIELDS",
    "CIRCUIT_SCHEMES",
    "CampaignResult",
    "CircuitFault",
    "FaultInjector",
    "FaultPlan",
    "MachineCampaignResult",
    "PrimitiveFault",
    "ReliabilityPolicy",
    "RouterFault",
    "SEGMENTED_FIELDS",
    "ScanVerificationError",
    "random_tree_fault_plan",
    "reliable_max_scan",
    "reliable_plus_scan",
    "run_circuit_campaign",
    "run_machine_campaign",
    "tree_fifo_length",
]
