"""Deterministic fault plans and the injector that executes them.

A primitive a machine is built on must be a primitive that can be
*trusted*, and the logic-level simulators in :mod:`repro.hardware` are the
right place to measure what that trust costs.  This module provides the
seeded, replayable half of the story:

* :class:`CircuitFault` — one scheduled bit flip inside a scan circuit,
  addressed by ``(cycle, unit, field, bit)`` (and a TMR ``replica``).
* :class:`RouterFault` — a dropped or address-corrupted flit in the
  hypercube router, addressed by ``(dimension, message)``.
* :class:`PrimitiveFault` — one flipped bit in the output of a
  :class:`~repro.machine.Machine` primitive (``scan``, ``elementwise`` or
  ``permute``), addressed by the per-kind invocation index.  The injector
  attaches at the machine's single dispatch point
  (:meth:`repro.machine.Machine.execute`), so injection behaves
  identically on every execution backend (:mod:`repro.backends`).
* :class:`FaultPlan` — an immutable bundle of the above plus an optional
  seeded per-invocation corruption probability.  The same plan always
  injects the same faults: every campaign is replayable from its seed.
* :class:`FaultInjector` — the stateful executor a circuit, router or
  machine consults; it records every flip it actually applies in a
  :class:`~repro.machine.counters.FaultCounters` ledger.

Nothing here costs anything when absent: every hook in the simulators is
``if injector is None`` — with injection disabled, all step and cycle
counts are bit-identical to the unfaulted code.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from .._util import ceil_log2
from ..machine.counters import FaultCounters
from ..observe.metrics import registry as _metrics

#: process-wide fault telemetry (the per-machine ``FaultCounters`` ledger
#: still reconciles per run; this aggregates across every injector)
_INJECTED_METRIC = _metrics.counter("faults.injected")

__all__ = [
    "CIRCUIT_FIELDS",
    "SEGMENTED_FIELDS",
    "CircuitFault",
    "FaultInjector",
    "FaultPlan",
    "PrimitiveFault",
    "ReliabilityPolicy",
    "RouterFault",
    "ScanVerificationError",
    "random_tree_fault_plan",
    "tree_fifo_length",
]


class ScanVerificationError(RuntimeError):
    """A checked scan failed verification and the machine's reliability
    policy forbids degrading to the EREW fallback."""


#: flippable state in a :class:`~repro.hardware.TreeScanCircuit` unit:
#: the three flip-flops of each sum state machine (Figure 15), the left
#: carry register of the down sweep, and the FIFO bits (Figure 14).
CIRCUIT_FIELDS = (
    "up_s", "up_q1", "up_q2",
    "down_s", "down_q1", "down_q2", "down_left",
    "fifo",
)

#: flippable word-level state in a
#: :class:`~repro.hardware.SegmentedTreeScanCircuit` (its simulator is
#: sweep-level, not clocked, so faults address sweep values per unit).
SEGMENTED_FIELDS = ("seg_up", "seg_flag", "seg_stored", "seg_carry")


def tree_fifo_length(unit: int) -> int:
    """FIFO length of tree unit ``unit`` (heap index): ``2 * depth``."""
    return 2 * (int(unit).bit_length() - 1)


@dataclass(frozen=True)
class CircuitFault:
    """Flip one bit of scan-circuit state at one clock edge.

    ``field`` is one of :data:`CIRCUIT_FIELDS` (clocked tree circuit) or
    :data:`SEGMENTED_FIELDS` (word-level segmented circuit, where ``cycle``
    is ignored and ``bit`` selects the value bit).  ``bit`` indexes the
    FIFO slot for ``field="fifo"`` and is ignored for single flip-flops.
    ``replica`` addresses one copy of a TMR triple (0 for plain circuits).
    """

    cycle: int
    unit: int
    field: str
    bit: int = 0
    replica: int = 0


@dataclass(frozen=True)
class RouterFault:
    """Lose or misdirect one message at one hop of the hypercube route.

    ``kind="drop"`` deletes the flit before it is forwarded on dimension
    ``dimension``; ``kind="corrupt"`` flips address bit ``bit`` of the
    message's in-flight destination as it traverses that hop — the message
    keeps routing toward the corrupted address, ending at the wrong node
    whenever the flipped bit's dimension had not been routed yet.
    """

    dimension: int
    message: int
    kind: str = "drop"
    bit: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("drop", "corrupt"):
            raise ValueError(f"router fault kind must be 'drop' or "
                             f"'corrupt', got {self.kind!r}")


@dataclass(frozen=True)
class PrimitiveFault:
    """Flip bit ``bit`` of element ``element`` in the output of the
    ``op_index``-th machine primitive of the given ``kind``.

    ``kind`` is ``"scan"``, ``"elementwise"`` or ``"permute"``; the
    invocation index counts every invocation of that kind on the machine,
    including verification and retry scans, so replays are exact.
    ``element`` is taken modulo the output length.
    """

    op_index: int
    kind: str = "scan"
    element: int = 0
    bit: int = 0


@dataclass(frozen=True)
class ReliabilityPolicy:
    """How a checked :class:`~repro.machine.Machine` responds to a scan
    that fails verification.

    ``max_retries`` bounds re-execution (each attempt re-charges the full
    primitive + verification cost); when retries are exhausted,
    ``degrade_on_failure`` selects between falling back to the EREW
    ``2⌈lg n⌉`` tree scan for the rest of the machine's life and raising
    :class:`ScanVerificationError`.
    """

    max_retries: int = 2
    degrade_on_failure: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seed-replayable fault campaign.

    ``probability`` adds seeded random output corruption on top of the
    scheduled faults: each machine-primitive invocation whose kind is in
    ``probability_kinds`` is corrupted (one random bit of one random
    element) with that probability, drawn from a generator seeded with
    ``seed`` — so two injectors built from the same plan flip exactly the
    same bits.
    """

    circuit_faults: tuple[CircuitFault, ...] = ()
    router_faults: tuple[RouterFault, ...] = ()
    primitive_faults: tuple[PrimitiveFault, ...] = ()
    probability: float = 0.0
    probability_kinds: tuple[str, ...] = ("scan",)
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "circuit_faults", tuple(self.circuit_faults))
        object.__setattr__(self, "router_faults", tuple(self.router_faults))
        object.__setattr__(self, "primitive_faults",
                           tuple(self.primitive_faults))
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must lie in [0, 1], "
                             f"got {self.probability}")
        for f in self.circuit_faults:
            if f.field not in CIRCUIT_FIELDS + SEGMENTED_FIELDS:
                raise ValueError(f"unknown circuit fault field {f.field!r}; "
                                 f"expected one of {CIRCUIT_FIELDS + SEGMENTED_FIELDS}")
        for f in self.primitive_faults:
            if f.kind not in ("scan", "elementwise", "permute"):
                raise ValueError(f"unknown primitive fault kind {f.kind!r}")

    @property
    def empty(self) -> bool:
        return (not self.circuit_faults and not self.router_faults
                and not self.primitive_faults and self.probability == 0.0)


def random_tree_fault_plan(seed: int, *, n_leaves: int, width: int,
                           replica: int = 0) -> FaultPlan:
    """One uniformly random single-bit flip somewhere in one
    :class:`~repro.hardware.TreeScanCircuit` run — the unit of a
    fault-injection campaign.  Deterministic in ``seed``.
    """
    rng = np.random.default_rng(seed)
    lg = ceil_log2(max(n_leaves, 2))
    total_cycles = width + 2 * lg - 2
    unit = int(rng.integers(1, n_leaves))
    fault_field = CIRCUIT_FIELDS[int(rng.integers(0, len(CIRCUIT_FIELDS)))]
    bit = 0
    if fault_field == "fifo":
        fifo_len = tree_fifo_length(unit)
        if fifo_len == 0:  # the root has no storage — flip its adder instead
            fault_field = "up_s"
        else:
            bit = int(rng.integers(0, fifo_len))
    cycle = int(rng.integers(0, total_cycles))
    return FaultPlan(circuit_faults=(CircuitFault(
        cycle=cycle, unit=unit, field=fault_field, bit=bit,
        replica=replica),), seed=seed)


class FaultInjector:
    """Executes a :class:`FaultPlan` against circuits, routers and
    machines, recording every applied flip.

    One injector holds the mutable campaign state (per-kind invocation
    counters and the probabilistic RNG); :meth:`reset` rewinds it to the
    start of the plan, after which the exact same faults replay.  Faults
    scheduled at circuit cycles are re-applied on every ``scan()`` the
    circuit runs (the flip is a property of the clock schedule, not of a
    particular run).
    """

    def __init__(self, plan: FaultPlan,
                 counters: Optional[FaultCounters] = None) -> None:
        self.plan = plan
        self.counters = counters if counters is not None else FaultCounters()
        self._circuit_by_cycle: dict[tuple[int, int], list[CircuitFault]] = {}
        self._segmented: list[CircuitFault] = []
        for f in plan.circuit_faults:
            if f.field in SEGMENTED_FIELDS:
                self._segmented.append(f)
            else:
                self._circuit_by_cycle.setdefault(
                    (f.replica, f.cycle), []).append(f)
        self._router_by_hop = {(f.dimension, f.message): f
                               for f in plan.router_faults}
        self._primitive_by_key: dict[tuple[str, int], list[PrimitiveFault]] = {}
        for f in plan.primitive_faults:
            self._primitive_by_key.setdefault((f.kind, f.op_index), []).append(f)
        self.reset()

    # ------------------------------------------------------------------ #
    # Replay control
    # ------------------------------------------------------------------ #

    def reset(self) -> None:
        """Rewind to the start of the plan (invocation counters and the
        probabilistic RNG); the injected-fault ledger is *not* cleared."""
        self._rng = np.random.default_rng(self.plan.seed)
        self._op_counts: dict[str, int] = {}

    def record_injected(self, count: int = 1) -> None:
        self.counters.injected += count
        _INJECTED_METRIC.inc(count)

    # ------------------------------------------------------------------ #
    # Circuit-level faults (consumed by repro.hardware)
    # ------------------------------------------------------------------ #

    def circuit_faults_at(self, cycle: int,
                          replica: int = 0) -> Sequence[CircuitFault]:
        """Flips scheduled for this clock edge of this replica."""
        return self._circuit_by_cycle.get((replica, cycle), ())

    def segmented_faults(self) -> Sequence[CircuitFault]:
        """Word-level flips for the segmented tree circuit."""
        return self._segmented

    # ------------------------------------------------------------------ #
    # Router faults
    # ------------------------------------------------------------------ #

    def router_fault_at(self, dimension: int,
                        message: int) -> Optional[RouterFault]:
        return self._router_by_hop.get((dimension, message))

    # ------------------------------------------------------------------ #
    # Machine-primitive output corruption
    # ------------------------------------------------------------------ #

    def corrupt_primitive(self, kind: str, out: np.ndarray) -> np.ndarray:
        """Possibly flip bits in the output of one machine primitive.

        Consumes one invocation index of ``kind``; returns the (possibly
        copied-and-corrupted) array.  The fast path — nothing scheduled,
        zero probability — returns ``out`` untouched.
        """
        idx = self._op_counts.get(kind, 0)
        self._op_counts[kind] = idx + 1
        scheduled = self._primitive_by_key.get((kind, idx), ())
        p = self.plan.probability if kind in self.plan.probability_kinds else 0.0
        random_hit = p > 0.0 and len(out) > 0 and self._rng.random() < p
        if not scheduled and not random_hit:
            return out
        out = out.copy()
        for f in scheduled:
            if len(out) == 0:
                continue
            _flip_bit(out, f.element % len(out), f.bit)
            self.record_injected()
        if random_hit:
            e = int(self._rng.integers(0, len(out)))
            bit = int(self._rng.integers(0, 8 * out.dtype.itemsize))
            _flip_bit(out, e, bit)
            self.record_injected()
        return out


def _flip_bit(arr: np.ndarray, element: int, bit: int) -> None:
    """Flip one physical bit of ``arr[element]`` in place, for any dtype
    (bools flip their truth value; ints and floats flip the raw bit
    pattern, exactly what a storage fault does)."""
    if arr.dtype == np.bool_:
        arr[element] = not arr[element]
        return
    raw = arr.view(np.uint8).reshape(len(arr), arr.dtype.itemsize)
    byte, bit_in_byte = divmod(bit % (8 * arr.dtype.itemsize), 8)
    raw[element, byte] ^= np.uint8(1 << bit_in_byte)
