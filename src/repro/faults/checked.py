"""Checked scan execution: verify, retry, degrade.

This is the recovery half of :mod:`repro.faults`.  A
:class:`~repro.machine.Machine` constructed with ``reliability=...``
routes every primitive scan through :func:`reliable_plus_scan` /
:func:`reliable_max_scan`:

1. run the primitive (one ``scan`` charge — and the point where a
   :class:`~repro.faults.FaultInjector` may corrupt the output);
2. cross-verify it against an independent Section 3.4 construction
   (:func:`repro.core.simulate.sim_verify_plus_scan` /
   :func:`~repro.core.simulate.sim_verify_max_scan`), charging the
   verification's true extra steps;
3. on a mismatch, retry up to ``policy.max_retries`` times, re-charging
   the full attempt each time;
4. when retries are exhausted, either mark the scan unit hard-failed and
   *degrade*: serve this and every later scan with the EREW ``2⌈lg n⌉``
   tree-scan costing (charged under the ``scan_degraded`` kind so the
   regime is visible in every :class:`~repro.machine.StepSnapshot` and
   trace), or raise :class:`~repro.faults.ScanVerificationError` if the
   policy forbids degrading.

The verification scans run with checking suppressed (the checker cannot
check itself) but remain subject to the machine's fault injector — a
corrupted verifier is a detectable false alarm, exactly as in hardware.
All counts land in ``machine.fault_counters``
(:class:`~repro.machine.counters.FaultCounters`).
"""
from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from ..baselines.erew_scan import erew_scan_steps
from ..core import scans
from ..core.simulate import sim_verify_max_scan, sim_verify_plus_scan
from ..core.vector import Vector
from ..observe.metrics import registry as _metrics
from .plan import ReliabilityPolicy, ScanVerificationError

__all__ = ["reliable_plus_scan", "reliable_max_scan"]

# process-wide fault telemetry (repro.observe), alongside the per-machine
# FaultCounters ledger
_DETECTED = _metrics.counter("faults.detected")
_RETRIED = _metrics.counter("faults.retried")
_CORRECTED = _metrics.counter("faults.corrected")
_DEGRADED = _metrics.counter("faults.degraded_scans")


@contextmanager
def _unchecked(machine):
    """Suppress checked-scan dispatch while running the raw primitive and
    its verifier (the checker cannot recursively check itself)."""
    prev = machine._suppress_scan_check
    machine._suppress_scan_check = True
    try:
        yield
    finally:
        machine._suppress_scan_check = prev


def reliable_plus_scan(v: Vector) -> Vector:
    return _reliable_scan(v, "plus", None)


def reliable_max_scan(v: Vector, identity=None) -> Vector:
    return _reliable_scan(v, "max", identity)


def _reliable_scan(v: Vector, which: str, identity) -> Vector:
    m = v.machine
    policy = m.reliability if m.reliability is not None else ReliabilityPolicy()
    if m.scan_unit_failed:
        return _degraded_scan(v, which, identity)

    attempts = policy.max_retries + 1
    for attempt in range(attempts):
        with _unchecked(m):
            if which == "plus":
                out = scans.plus_scan(v)
                ok = sim_verify_plus_scan(v, out)
            else:
                out = scans.max_scan(v, identity=identity)
                ok = sim_verify_max_scan(v, out, identity=identity)
        if ok:
            if attempt:
                m.fault_counters.corrected += 1
                _CORRECTED.inc()
            return out
        m.fault_counters.detected += 1
        _DETECTED.inc()
        if attempt < attempts - 1:
            m.fault_counters.retried += 1
            _RETRIED.inc()

    if policy.degrade_on_failure:
        m.scan_unit_failed = True
        return _degraded_scan(v, which, identity)
    raise ScanVerificationError(
        f"{which}-scan over {len(v)} elements failed verification on all "
        f"{attempts} attempts and the reliability policy forbids degrading"
    )


def _degraded_scan(v: Vector, which: str, identity) -> Vector:
    """Serve one scan from the EREW fallback: the ``2⌈lg n⌉`` tree of
    memory references (:mod:`repro.baselines.erew_scan` costing), charged
    under the ``scan_degraded`` kind.  The fallback bypasses the failed
    scan unit entirely, so it is not subject to scan-output injection."""
    m = v.machine
    n = len(v)
    m.counter.charge("scan_degraded", erew_scan_steps(n) if n else 0)
    m.fault_counters.degraded_scans += 1
    _DEGRADED.inc()
    data = v.data
    if which == "plus":
        if data.dtype == np.bool_:
            data = data.astype(np.int64)
        out = m.execute("plus_scan", data)
    else:
        if identity is None:
            identity = scans.max_identity(data.dtype)
        out = m.execute("max_scan", data, identity)
    return Vector._adopt(m, out)
