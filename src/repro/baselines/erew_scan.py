"""Scans by explicit EREW memory operations — the tree algorithm of
Section 3.1 executed as ``2 lg n`` rounds of P-RAM memory references.

This is what a pure P-RAM *pays* for a scan, spelled out: an up sweep that
sums pairs up a balanced binary tree and a down sweep that pushes prefixes
back.  The module exists (a) to validate the cost the ``Machine`` charges
for scans on non-scan models against a real implementation, and (b) to let
benchmarks show the identical algorithm/result with Θ(lg n) steps instead
of one.
"""
from __future__ import annotations

import numpy as np

from .._util import ceil_log2
from ..core.vector import Vector

__all__ = ["erew_plus_scan", "erew_max_scan", "erew_scan_steps"]


def erew_scan_steps(n: int) -> int:
    """Program steps the explicit tree scan uses for ``n`` elements:
    one combine step per level per sweep."""
    if n <= 1:
        return 2
    return 2 * ceil_log2(n)


def _tree_scan(v: Vector, op, identity) -> Vector:
    m = v.machine
    n = len(v)
    if n == 0:
        return v
    lg = ceil_log2(n) if n > 1 else 1
    size = 1 << lg
    work = np.full(size, identity, dtype=v.dtype if v.dtype != np.bool_ else np.int64)
    work[:n] = v.data

    # up sweep: combine pairs at stride 2^(d+1) (one program step per level:
    # each active processor reads one cell and combines)
    for d in range(lg):
        m.charge_elementwise(size >> (d + 1))
        step = 1 << (d + 1)
        half = 1 << d
        left = np.arange(half - 1, size, step)
        right = np.arange(step - 1, size, step)
        work[right] = op(work[right], work[left])

    # down sweep
    work[size - 1] = identity
    for d in range(lg - 1, -1, -1):
        m.charge_elementwise(size >> (d + 1))
        step = 1 << (d + 1)
        half = 1 << d
        left = np.arange(half - 1, size, step)
        right = np.arange(step - 1, size, step)
        t = work[left].copy()
        work[left] = work[right]
        work[right] = op(work[right], t)

    out = work[:n]
    if v.dtype == np.bool_:
        out = out.astype(np.int64)
    return Vector(m, out.copy())


def erew_plus_scan(v: Vector) -> Vector:
    """Exclusive ``+-scan`` by the explicit tree algorithm (Θ(lg n) steps)."""
    data = v if v.dtype != np.bool_ else v.astype(np.int64)
    return _tree_scan(data, np.add, 0)


def erew_max_scan(v: Vector, identity=None) -> Vector:
    """Exclusive ``max-scan`` by the explicit tree algorithm."""
    if identity is None:
        if np.issubdtype(v.dtype, np.integer):
            identity = np.iinfo(v.dtype).min
        else:
            identity = -np.inf
    return _tree_scan(v, np.maximum, identity)
