"""Shiloach–Vishkin connected components — the O(lg n) *CRCW* algorithm
Table 1's CRCW column cites [43].

Unlike the star-merge algorithm (which maintains the segmented graph
representation with scans), Shiloach–Vishkin works on a bare parent
array with concurrent reads and combining (minimum) writes: hook smaller
roots onto neighbors, hook stagnant stars, shortcut by pointer doubling.
It is therefore a genuine *baseline* for the scan model: the same O(lg n)
bound, achieved with the stronger memory primitives instead of scans.

Every array operation charges the machine: gathers with duplicate indices
(concurrent reads) and min-combining scatters (concurrent writes), so the
algorithm refuses to run on EREW/scan machines — which is the point.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import ceil_log2
from ..machine.model import CapabilityError, Machine

__all__ = ["shiloach_vishkin_components", "SVResult"]


@dataclass
class SVResult:
    labels: np.ndarray
    num_components: int
    iterations: int


def _require_crcw(machine: Machine) -> None:
    caps = machine.capabilities
    if not (caps.concurrent_read and caps.combining_write):
        raise CapabilityError(
            "Shiloach-Vishkin needs concurrent reads and combining writes "
            f"(a CRCW machine); got {machine.model!r}"
        )


def _star_check(machine: Machine, d: np.ndarray) -> np.ndarray:
    """JaJa's star subroutine: ``star[v]`` iff v's tree is a star.
    Three concurrent-read rounds plus one concurrent write."""
    n = len(d)
    machine.charge_gather(n, unique=False)
    gd = d[d]
    machine.charge_elementwise(n)
    star = gd == d
    bad = np.flatnonzero(~star)
    machine.charge_combine_write(n)
    star[gd[bad]] = False  # the grandparent's tree is not a star either
    machine.charge_gather(n, unique=False)
    return star[d]


def shiloach_vishkin_components(machine: Machine, n_vertices: int, edges,
                                *, max_iterations: int | None = None) -> SVResult:
    """Label connected components with the Shiloach–Vishkin algorithm."""
    _require_crcw(machine)
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    d = np.arange(n_vertices, dtype=np.int64)
    if len(edges) == 0:
        return SVResult(labels=d, num_components=n_vertices, iterations=0)
    u = np.concatenate((edges[:, 0], edges[:, 1]))
    v = np.concatenate((edges[:, 1], edges[:, 0]))
    m_edges = len(u)
    if max_iterations is None:
        max_iterations = 4 * (ceil_log2(max(n_vertices, 2)) + 2) + 8

    iterations = 0
    while True:
        if iterations >= max_iterations:  # pragma: no cover - defensive
            raise RuntimeError("Shiloach-Vishkin did not converge")
        iterations += 1
        before = d.copy()

        # --- conditional star hooking: smaller root wins ---------------- #
        star = _star_check(machine, d)
        machine.charge_gather(m_edges, unique=False)
        du, dv = d[u], d[v]
        machine.charge_elementwise(m_edges)
        cond = star[u] & (dv < du)
        machine.charge_combine_write(m_edges)
        if cond.any():
            np.minimum.at(d, du[cond], dv[cond])

        # --- unconditional hooking of still-stagnant stars --------------- #
        star = _star_check(machine, d)
        machine.charge_gather(m_edges, unique=False)
        du, dv = d[u], d[v]
        machine.charge_elementwise(m_edges)
        cond = star[u] & (dv != du)
        machine.charge_combine_write(m_edges)
        if cond.any():
            np.minimum.at(d, du[cond], dv[cond])

        # --- shortcut: pointer doubling ----------------------------------- #
        machine.charge_gather(n_vertices, unique=False)
        d = d[d]

        machine.charge_reduce(n_vertices)
        if np.array_equal(d, before):
            break

    return SVResult(labels=d,
                    num_components=int(len(np.unique(d))),
                    iterations=iterations)
