"""Baselines: serial oracles and P-RAM comparison algorithms."""
from .bitonic import bitonic_sort, bitonic_stage_count
from .crcw_cc import SVResult, shiloach_vishkin_components
from .erew_scan import erew_max_scan, erew_plus_scan, erew_scan_steps
from .valiant_merge import valiant_merge
from .serial import (
    brute_closest_pair,
    dda_line,
    biconnected_edge_blocks,
    dinic_max_flow,
    kruskal_mst,
    monotone_chain_hull,
    serial_line_of_sight,
    serial_merge,
    serial_sort,
    union_find_components,
)

__all__ = [
    "SVResult",
    "bitonic_sort",
    "bitonic_stage_count",
    "biconnected_edge_blocks",
    "brute_closest_pair",
    "dinic_max_flow",
    "dda_line",
    "erew_max_scan",
    "erew_plus_scan",
    "erew_scan_steps",
    "kruskal_mst",
    "monotone_chain_hull",
    "serial_line_of_sight",
    "serial_merge",
    "serial_sort",
    "shiloach_vishkin_components",
    "union_find_components",
    "valiant_merge",
]
