"""Serial reference implementations used to validate the parallel code.

These are deliberately straightforward host-side algorithms — no machine,
no step charging — so every scan-model algorithm in
:mod:`repro.algorithms` has an independent oracle.
"""
from __future__ import annotations

import numpy as np

__all__ = [
    "serial_sort",
    "serial_merge",
    "kruskal_mst",
    "union_find_components",
    "dda_line",
    "monotone_chain_hull",
    "brute_closest_pair",
    "serial_line_of_sight",
]


def serial_sort(values) -> np.ndarray:
    """Stable sort (NumPy mergesort)."""
    return np.sort(np.asarray(values), kind="stable")


def serial_merge(a, b) -> np.ndarray:
    """Stable two-way merge of sorted arrays (a's elements first on ties)."""
    a = np.asarray(a)
    b = np.asarray(b)
    out = np.empty(len(a) + len(b), dtype=np.result_type(a.dtype, b.dtype))
    i = j = k = 0
    while i < len(a) and j < len(b):
        if a[i] <= b[j]:
            out[k] = a[i]
            i += 1
        else:
            out[k] = b[j]
            j += 1
        k += 1
    out[k:] = np.concatenate((a[i:], b[j:]))
    return out


class _DSU:
    """Union-find with path halving."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        p = self.parent
        while p[x] != x:
            p[x] = p[p[x]]
            x = p[x]
        return x

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[ra] = rb
        return True


def kruskal_mst(n_vertices: int, edges, weights) -> tuple[np.ndarray, int]:
    """Kruskal's algorithm; returns (edge indices, total weight) of a
    minimum spanning forest."""
    edges = np.asarray(edges)
    weights = np.asarray(weights)
    order = np.argsort(weights, kind="stable")
    dsu = _DSU(n_vertices)
    chosen = []
    for e in order:
        u, v = int(edges[e, 0]), int(edges[e, 1])
        if dsu.union(u, v):
            chosen.append(int(e))
    chosen = np.array(sorted(chosen), dtype=np.int64)
    return chosen, int(weights[chosen].sum()) if len(chosen) else 0


def union_find_components(n_vertices: int, edges) -> np.ndarray:
    """Component labels via union-find, canonicalized so the label of a
    component is its smallest vertex id."""
    dsu = _DSU(n_vertices)
    for u, v in np.asarray(edges).reshape(-1, 2):
        dsu.union(int(u), int(v))
    roots = np.array([dsu.find(v) for v in range(n_vertices)])
    canon: dict[int, int] = {}
    out = np.empty(n_vertices, dtype=np.int64)
    for v in range(n_vertices):
        out[v] = canon.setdefault(int(roots[v]), v)
    return out


def dda_line(x0: int, y0: int, x1: int, y1: int) -> list[tuple[int, int]]:
    """The simple DDA of Newman & Sproull: step along the major axis and
    round the minor coordinate (round-half-up via floor division, matching
    the parallel routine)."""
    dx, dy = x1 - x0, y1 - y0
    steps = max(abs(dx), abs(dy))
    if steps == 0:
        return [(x0, y0)]
    pts = []
    for t in range(steps + 1):
        px = x0 + (2 * t * dx + steps) // (2 * steps)
        py = y0 + (2 * t * dy + steps) // (2 * steps)
        pts.append((px, py))
    return pts


def monotone_chain_hull(points) -> set[tuple[int, int]]:
    """Strict convex hull vertex set by Andrew's monotone chain."""
    pts = sorted(set(map(tuple, np.asarray(points).tolist())))
    if len(pts) <= 2:
        return set(pts)

    def build(seq):
        h: list[tuple[int, int]] = []
        for p in seq:
            while len(h) >= 2 and (
                (h[-1][0] - h[-2][0]) * (p[1] - h[-2][1])
                - (h[-1][1] - h[-2][1]) * (p[0] - h[-2][0])
            ) <= 0:
                h.pop()
            h.append(p)
        return h

    return set(build(pts)[:-1] + build(pts[::-1])[:-1])


def brute_closest_pair(points) -> int:
    """Minimum squared distance by brute force."""
    pts = np.asarray(points, dtype=np.int64)
    n = len(pts)
    best = np.iinfo(np.int64).max
    for i in range(n):
        d = pts[i + 1:] - pts[i]
        if len(d):
            best = min(best, int((d * d).sum(axis=1).min()))
    return best


def dinic_max_flow(n_vertices: int, arcs, source: int, sink: int) -> int:
    """Dinic's algorithm on a directed capacitated graph.

    ``arcs`` is an iterable of ``(u, v, capacity)``; antiparallel arcs are
    allowed.  Returns the maximum s-t flow value (oracle for the parallel
    push–relabel solver).
    """
    from collections import deque

    head: list[int] = []
    nxt: list[int] = []
    cap: list[int] = []
    first = [-1] * n_vertices

    def add(u, v, c):
        head.append(v)
        cap.append(c)
        nxt.append(first[u])
        first[u] = len(head) - 1

    for u, v, c in arcs:
        add(int(u), int(v), int(c))
        add(int(v), int(u), 0)

    flow = 0
    # Dinic runs at most n-1 phases (the sink's level strictly increases);
    # exceeding that means the residual graph is being corrupted somewhere
    max_phases = n_vertices + 1
    for phase in range(max_phases + 1):
        if phase == max_phases:
            raise RuntimeError(
                f"dinic_max_flow exceeded {max_phases} level-graph phases "
                f"on {n_vertices} vertices (flow so far: {flow}); the "
                f"residual network is not converging")
        level = [-1] * n_vertices
        level[source] = 0
        q = deque([source])
        while q:
            u = q.popleft()
            e = first[u]
            while e != -1:
                if cap[e] > 0 and level[head[e]] < 0:
                    level[head[e]] = level[u] + 1
                    q.append(head[e])
                e = nxt[e]
        if level[sink] < 0:
            return flow
        it = first.copy()

        def dfs(u, pushed):
            if u == sink:
                return pushed
            while it[u] != -1:
                e = it[u]
                v = head[e]
                if cap[e] > 0 and level[v] == level[u] + 1:
                    got = dfs(v, min(pushed, cap[e]))
                    if got:
                        cap[e] -= got
                        cap[e ^ 1] += got
                        return got
                it[u] = nxt[e]
            return 0

        # each augmenting path saturates at least one arc, so one phase
        # cannot push more paths than there are arcs
        max_augmentations = len(head) + 1
        for aug in range(max_augmentations + 1):
            if aug == max_augmentations:
                raise RuntimeError(
                    f"dinic_max_flow exceeded {max_augmentations} "
                    f"augmenting paths in one phase ({len(head)} arcs; "
                    f"flow so far: {flow}); an augmentation is failing "
                    f"to saturate any arc")
            pushed = dfs(source, 1 << 60)
            if not pushed:
                break
            flow += pushed


def biconnected_edge_blocks(n_vertices: int, edges) -> list[frozenset[int]]:
    """Hopcroft–Tarjan biconnected components (iterative, with an edge
    stack); returns the partition of edge ids into blocks."""
    edges = np.asarray(edges).reshape(-1, 2)
    adj: list[list[tuple[int, int]]] = [[] for _ in range(n_vertices)]
    for e, (u, v) in enumerate(edges):
        adj[int(u)].append((int(v), e))
        adj[int(v)].append((int(u), e))

    visited = [False] * n_vertices
    disc = [0] * n_vertices
    low = [0] * n_vertices
    timer = [1]
    blocks: list[frozenset[int]] = []
    edge_stack: list[int] = []
    seen_edge = [False] * len(edges)

    for start in range(n_vertices):
        if visited[start] or not adj[start]:
            continue
        stack = [(start, -1, iter(adj[start]))]
        visited[start] = True
        disc[start] = low[start] = timer[0]
        timer[0] += 1
        while stack:
            v, parent_edge, it = stack[-1]
            advanced = False
            for w, e in it:
                if e == parent_edge:
                    continue
                if not seen_edge[e]:
                    seen_edge[e] = True
                    edge_stack.append(e)
                if not visited[w]:
                    visited[w] = True
                    disc[w] = low[w] = timer[0]
                    timer[0] += 1
                    stack.append((w, e, iter(adj[w])))
                    advanced = True
                    break
                low[v] = min(low[v], disc[w])
            if advanced:
                continue
            stack.pop()
            if stack:
                pv = stack[-1][0]
                low[pv] = min(low[pv], low[v])
                if low[v] >= disc[pv]:
                    # pop the block, up to and including v's parent edge
                    block = []
                    while edge_stack:
                        e = edge_stack.pop()
                        block.append(e)
                        if e == parent_edge:
                            break
                    blocks.append(frozenset(block))
    return blocks


def serial_line_of_sight(altitudes: np.ndarray, values_per_ray, observer_altitude: float
                         ) -> list[list[bool]]:
    """Visibility per ray by a running maximum (oracle for
    :func:`repro.algorithms.visibility`)."""
    out = []
    for alts, dists in values_per_ray:
        best = -np.inf
        ray = []
        for a, d in zip(alts, dists):
            ang = (a - observer_altitude) / max(d, 1e-12)
            ray.append(ang > best)
            best = max(best, ang)
        out.append(ray)
    return out
