"""Batcher's bitonic sort as a P-RAM baseline (Table 4's comparator).

Bitonic sort needs no scans — only compare-exchanges between partners at
hypercube distances — so it costs the same on every P-RAM variant:
``lg n (lg n + 1) / 2`` stages of one exclusive gather plus one elementwise
select, i.e. Θ(lg² n) program steps.  The paper compares it against the
split radix sort both at the circuit level (Table 4; see
:mod:`repro.hardware.bitonic_net`) and on the CM-1.
"""
from __future__ import annotations

import numpy as np

from .._util import ceil_log2
from ..core.vector import Vector

__all__ = ["bitonic_sort", "bitonic_stage_count"]


def bitonic_stage_count(n: int) -> int:
    """Number of compare-exchange stages for ``n`` (padded) keys."""
    lg = ceil_log2(max(n, 1))
    return lg * (lg + 1) // 2


def bitonic_sort(v: Vector) -> Vector:
    """Sort any comparable vector with Batcher's bitonic network.

    Θ(lg² n) program steps; the input is padded to a power of two with the
    dtype's maximum value, which is stripped afterwards.
    """
    m = v.machine
    n = len(v)
    if n <= 1:
        return v
    lg = ceil_log2(n)
    size = 1 << lg
    if np.issubdtype(v.dtype, np.integer):
        pad_val = np.iinfo(v.dtype).max
    elif v.dtype == np.bool_:
        pad_val = True
    else:
        pad_val = np.inf
    data = v
    if size != n:
        m.charge_permute(size)
        padded = np.full(size, pad_val, dtype=v.dtype)
        padded[:n] = v.data
        data = Vector(m, padded)

    idx = np.arange(size, dtype=np.int64)
    for k_exp in range(1, lg + 1):
        k = 1 << k_exp
        for j_exp in range(k_exp - 1, -1, -1):
            j = 1 << j_exp
            partner = Vector(m, idx ^ j)
            other = data.gather(partner)
            m.charge_elementwise(size)
            ascending = (idx & k) == 0
            is_low = (idx & j) == 0
            take_min = ascending == is_low
            new = np.where(take_min,
                           np.minimum(data.data, other.data),
                           np.maximum(data.data, other.data))
            data = Vector(m, new)

    if size != n:
        m.charge_permute(size)
        data = Vector(m, data.data[:n].copy())
    return data
