"""Valiant's doubly-logarithmic merge — Table 1's merging row cites the
Shiloach–Vishkin/Valiant O(lg lg n) bound on the stronger P-RAM models.

The recursion: mark every ⌈√n⌉-th element of A and every ⌈√m⌉-th of B,
merge those samples recursively (the subproblem has ~√n + √m elements),
and use the sample ranks to cut both vectors into independent block pairs
that recurse in parallel.  The depth of the recursion is O(lg lg n); each
level costs O(1) parallel steps *given concurrent reads* (many blocks
read the shared sample ranks), so the algorithm demands a CREW/CRCW
machine — exactly the Table 1 caveat the scan model's halving merge
avoids.

Charging: every level of the (host-simulated) recursion charges a
constant number of gathers/elementwise steps over the elements live at
that level; the measured step count grows like lg lg n.
"""
from __future__ import annotations

import numpy as np

from ..core.vector import Vector
from ..machine.model import CapabilityError, Machine

__all__ = ["valiant_merge"]


def _require_concurrent_read(machine: Machine) -> None:
    if not machine.capabilities.concurrent_read:
        raise CapabilityError(
            "Valiant's merge needs concurrent reads (CREW/CRCW); "
            f"got {machine.model!r} — use halving_merge on the scan model"
        )


def valiant_merge(a: Vector, b: Vector) -> Vector:
    """Merge two sorted vectors in O(lg lg n) charged rounds (CREW+)."""
    m = a.machine
    _require_concurrent_read(m)
    if b.machine is not m:
        raise ValueError("operands live on different machines")
    av = a.data
    bv = b.data
    if len(av) > 1 and (np.diff(av) < 0).any():
        raise ValueError("a must be sorted")
    if len(bv) > 1 and (np.diff(bv) < 0).any():
        raise ValueError("b must be sorted")

    out = np.empty(len(av) + len(bv), dtype=np.result_type(av.dtype, bv.dtype))
    _merge_into(m, av, bv, out)
    return Vector(m, out)


def _merge_into(machine: Machine, a: np.ndarray, b: np.ndarray,
                out: np.ndarray) -> None:
    """Recursive level: charge O(1) parallel primitives over the level's
    total size, then recurse on independent block pairs *together* (they
    run in parallel, so one charge per depth, not per block)."""
    frontier = [(a, b, out)]
    while frontier:
        total = sum(len(x) + len(y) for x, y, _ in frontier)
        machine.charge_elementwise(max(total, 1))
        machine.charge_gather(max(total, 1), unique=False)  # sample lookups
        machine.counter.charge("permute", machine._block(max(total, 1)))
        nxt = []
        for x, y, dest in frontier:
            nxt.extend(_one_level(x, y, dest))
        frontier = nxt


def _one_level(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> list:
    """Split one (a, b) pair by its samples; return the sub-pairs that
    still need merging."""
    n, k = len(a), len(b)
    if n == 0:
        out[:] = b
        return []
    if k == 0:
        out[:] = a
        return []
    if n <= 2 or k <= 2:
        # one side is constant: finish in this level (each element of the
        # small side binary-searches the other concurrently)
        i = j = t = 0
        while i < n and j < k:
            if a[i] <= b[j]:
                out[t] = a[i]
                i += 1
            else:
                out[t] = b[j]
                j += 1
            t += 1
        out[t:] = np.concatenate((a[i:], b[j:]))
        return []

    sa = max(int(np.sqrt(n)), 1)
    sample_idx = np.arange(sa - 1, n, sa)
    samples = a[sample_idx]
    # every sample's rank in b, found concurrently (binary searches);
    # side="left" sends b's duplicates of a sample into the next block,
    # where the base merge keeps a's copies first (global stability)
    ranks = np.searchsorted(b, samples, side="left")

    subproblems = []
    prev_a = 0
    prev_b = 0
    prev_out = 0
    bounds = list(zip(sample_idx + 1, ranks)) + [(n, k)]
    for end_a, end_b in bounds:
        xa = a[prev_a:end_a]
        xb = b[prev_b:end_b]
        size = len(xa) + len(xb)
        dest = out[prev_out: prev_out + size]
        if size:
            subproblems.append((xa, xb, dest))
        prev_a, prev_b, prev_out = end_a, end_b, prev_out + size
    return subproblems
