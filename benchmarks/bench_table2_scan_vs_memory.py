"""Table 2: a scan operation versus a parallel memory reference, in theory
(circuit forms) and 'in practice' (our logic-level simulators standing in
for the CM-2).

Paper's numbers at 64K processors: memory reference 600 bit cycles / 30%
of the hardware; scan 550 bit cycles / 0% extra hardware.  The shape to
reproduce: scans are at least as fast and far cheaper.

Also reproduces the Section 3.3 example system (4096 processors: 5 us
scans at a 100 ns clock, 0.5 us at 10 ns).
"""
import numpy as np
import pytest

from repro.hardware import (
    HypercubeRouter,
    TreeScanCircuit,
    PLUS,
    example_system,
    scan_vs_memory,
    tree_scan_cycles,
)

from _common import fmt_row, write_report


def test_table2_simulated_cycles(benchmark):
    """Cycle-by-cycle comparison at a simulable size, plus closed forms at
    CM-2 scale."""
    n_sim, width = 256, 16
    rng = np.random.default_rng(0)
    circuit = TreeScanCircuit(n_sim, width, PLUS)
    vals = rng.integers(0, 2**8, n_sim)

    _, scan_cycles = benchmark(lambda: circuit.scan(vals))

    router = HypercubeRouter(n_sim, width)
    mem_cycles = router.random_permutation_cycles(np.random.default_rng(1))

    big = scan_vs_memory(65536, 32)
    lines = [
        "Table 2: memory reference vs scan operation",
        "",
        f"simulated at n={n_sim}, {width}-bit operands:",
        fmt_row(["", "memory ref", "scan"], [24, 12, 8]),
        fmt_row(["bit cycles", mem_cycles, scan_cycles], [24, 12, 8]),
        "",
        "closed forms at n=65536, 32-bit (CM-2 scale; paper: 600 vs 550):",
        fmt_row(["bit cycles (wormhole)",
                 int(big['memory_reference']['bit_cycles_wormhole']),
                 int(big['scan_operation']['bit_cycles'])], [24, 12, 8]),
        fmt_row(["circuit size",
                 int(big['memory_reference']['circuit_size']),
                 int(big['scan_operation']['circuit_size'])], [24, 12, 8]),
        fmt_row(["VLSI area",
                 int(big['memory_reference']['vlsi_area']),
                 int(big['scan_operation']['vlsi_area'])], [24, 12, 8]),
        f"scan hardware as a fraction of the router's: "
        f"{big['scan_operation']['hardware_fraction_of_router']:.3%} "
        f"(paper: <1% of machine cost vs 30-50% for the network)",
    ]
    write_report("table2", lines)

    assert scan_cycles < mem_cycles
    assert (big["scan_operation"]["bit_cycles"]
            <= big["memory_reference"]["bit_cycles_wormhole"])
    assert big["scan_operation"]["hardware_fraction_of_router"] < 0.10


def test_section33_example_system(benchmark):
    es = benchmark(example_system)
    lines = [
        "Section 3.3 example system (4096 processors, 64 per board):",
        f"  board chip: {es.per_board_chip_state_machines} sum state machines, "
        f"{es.per_board_chip_shift_registers} shift registers (paper: 126 / 63)",
        f"  32-bit scan: {es.scan_cycles_32bit} cycles",
        f"  at 100 ns clock: {es.scan_time_at_100ns * 1e6:.2f} us (paper: ~5 us)",
        f"  at 10 ns clock:  {es.scan_time_at_10ns * 1e6:.2f} us (paper: ~0.5 us)",
    ]
    write_report("table2_example_system", lines)
    assert es.per_board_chip_state_machines == 126
    assert es.per_board_chip_shift_registers == 63
    assert 4e-6 < es.scan_time_at_100ns < 6e-6


def test_scan_cycles_scale_logarithmically(benchmark):
    benchmark(lambda: tree_scan_cycles(65536, 32))
    lines = ["scan circuit cycles, 32-bit operands:"]
    for n in (256, 4096, 65536, 1 << 20):
        lines.append(f"  n={n:>8}: {tree_scan_cycles(n, 32)} cycles")
    write_report("table2_scan_scaling", lines)
    assert tree_scan_cycles(1 << 20, 32) - tree_scan_cycles(256, 32) == 2 * 12
