"""Execution backends: what does the dispatch layer cost, and when does
chunking win?

Not a paper table — the harness's own health check for the backend split
(`repro.backends`).  Three claims, measured:

1. **Dispatch is free where it matters** — the NumPy and Blocked backends
   produce bit-identical results and *identical step charges* across
   sizes; wall-clock stays within a small constant factor of the plain
   NumPy backend even at blocked's worst case (tiny chunks).
2. **Chunking bounds temporaries** — a compound elementwise expression
   that materializes three whole-vector float64 temporaries on the NumPy
   backend peaks at a fraction of that memory when the Blocked backend
   streams it chunk by chunk: the size regime where Blocked *wins*.
3. **Carries are real** — Blocked completes a +-scan on a vector hundreds
   of chunks long (including sums that wrap int64 many times over) and
   matches whole-vector ``np.cumsum`` exactly.
"""
import time
import tracemalloc

import numpy as np

from repro import Machine
from repro.backends import BlockedBackend
from repro.core import scans

from _common import fmt_row, write_report

_report_lines: dict[str, list[str]] = {}


def _publish(section: str, lines: list[str]) -> None:
    """Accumulate sections and rewrite the single results file; sections
    arrive in test order, so the file is complete after the last test."""
    _report_lines[section] = lines
    flat = []
    for ls in _report_lines.values():
        flat.extend(ls + [""])
    write_report("backends", flat[:-1])


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _scan_pipeline(m, data):
    """A small but representative workload: elementwise, scan, permute."""
    v = m.vector(data)
    s = scans.plus_scan(v * 3 + 1)
    return s.reverse()


def test_wallclock_across_sizes(benchmark):
    rng = np.random.default_rng(0)
    widths = [9, 12, 14, 14, 9]
    lines = ["Wall-clock: NumPy vs Blocked backend "
             "(elementwise + scan + permute pipeline, best of 5)",
             fmt_row(["n", "numpy (ms)", "blocked (ms)", "ratio"], widths)]

    m_np = Machine("scan")
    ratios = []
    for n in (1 << 12, 1 << 16, 1 << 20):
        data = rng.integers(-10**6, 10**6, n)
        m_bl = Machine("scan", backend="blocked")  # default 64k chunks
        out_np = _scan_pipeline(m_np, data)
        out_bl = _scan_pipeline(m_bl, data)
        assert np.array_equal(out_np.data, out_bl.data)

        t_np = _best_of(lambda: _scan_pipeline(m_np, data))
        t_bl = _best_of(lambda: _scan_pipeline(m_bl, data))
        ratios.append(t_bl / t_np)
        lines.append(fmt_row([n, f"{t_np * 1e3:.3f}", f"{t_bl * 1e3:.3f}",
                              f"{t_bl / t_np:.2f}x"], widths))

    # step charges come from the cost model, not the backend: after
    # identical programs both machines have charged identical steps
    steps_np, steps_bl = Machine("scan"), Machine("scan", backend="blocked")
    _scan_pipeline(steps_np, np.arange(1 << 16))
    _scan_pipeline(steps_bl, np.arange(1 << 16))
    assert steps_np.steps == steps_bl.steps
    lines.append(f"step charges identical: {steps_np.steps} steps each "
                 f"at n={1 << 16}")
    _publish("wallclock", lines)

    benchmark(lambda: _scan_pipeline(m_np, np.arange(1 << 16)))

    # chunked dispatch costs a constant factor, not an asymptotic one
    assert all(r < 50 for r in ratios)


def test_memory_blocked_wins():
    n, chunk = 400_000, 4_096
    data = np.arange(n)
    # three whole-vector float64 temporaries (sin, cos, exp) on the NumPy
    # backend; the Blocked backend holds them one 4k-element chunk at a
    # time and only the bool result (1 byte/element) spans the vector
    fn = lambda a: (np.sin(a) + np.cos(a) * np.exp(-a * 1e-9)) > 0.5

    peaks = {}
    for name, machine in (
        ("numpy", Machine("scan")),
        ("blocked", Machine("scan", backend=BlockedBackend(chunk=chunk))),
    ):
        v = machine.vector(data)
        tracemalloc.start()
        out = v._unary(fn)
        _, peaks[name] = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert len(out) == n

    widths = [9, 14, 18]
    lines = [f"Peak temporary memory, compound elementwise map "
             f"(n={n:,}, chunk={chunk:,})",
             fmt_row(["backend", "peak (bytes)", "bytes / element"], widths),
             fmt_row(["numpy", peaks["numpy"],
                      f"{peaks['numpy'] / n:.1f}"], widths),
             fmt_row(["blocked", peaks["blocked"],
                      f"{peaks['blocked'] / n:.1f}"], widths),
             f"blocked peaks at {peaks['blocked'] / peaks['numpy']:.2f}x "
             f"the numpy backend's memory: the regime where Blocked wins"]
    _publish("memory", lines)

    assert peaks["blocked"] < peaks["numpy"] / 2


def test_blocked_carries_long_vector(benchmark):
    n, chunk = 1 << 20, 4_096  # 256 chunks of carry propagation
    rng = np.random.default_rng(1)
    data = rng.integers(-10**9, 10**9, n)
    m = Machine("scan", backend=BlockedBackend(chunk=chunk))

    out = benchmark(lambda: scans.plus_scan(m.vector(data)))
    expected = np.concatenate(([0], np.cumsum(data)[:-1]))
    assert np.array_equal(out.data, expected)

    # carries are modular too: sums that wrap int64 many times still match
    wrap = np.full(10_000, np.iinfo(np.int64).max // 3)
    out_wrap = scans.plus_scan(m.vector(wrap))
    exp_wrap = np.concatenate(([0], np.cumsum(wrap)[:-1]))
    assert np.array_equal(out_wrap.data, exp_wrap)

    # and the scan model still charges unit steps through the chunk loop
    m2 = Machine("scan", backend=BlockedBackend(chunk=chunk))
    scans.plus_scan(m2.vector(data))
    assert m2.steps == 1

    lines = [f"Blocked +-scan, n={n:,} across {n // chunk} chunks of "
             f"{chunk:,}: matches np.cumsum exactly",
             f"int64-wraparound carries (10,000 x maxint/3): exact",
             f"scan-model charge through the chunk loop: 1 step"]
    _publish("carries", lines)
