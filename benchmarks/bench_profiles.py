"""Span/step profiles for three Table 1 algorithms on both real-execution
backends, recorded through ``repro.observe`` (the same profiler behind
``python -m repro profile``).

Each run persists the rendered report as
``results/profile_<algorithm>_<backend>.txt`` — step total, primitive
mix, and the span tree with wall-clock and temporary-byte estimates —
and cross-checks the step total against the committed golden baseline in
``baselines/``: the profile reports and the regression gate must never
tell different stories.
"""
import json
import pathlib

import pytest

from _common import profile_report

BASELINE_DIR = pathlib.Path(__file__).parent.parent / "baselines"

ALGORITHMS = ["radix_sort", "halving_merge", "mst"]
BACKENDS = ["numpy", "blocked"]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_profile_reports(algorithm, backend, benchmark):
    from repro.observe import run_profile

    benchmark(lambda: run_profile(algorithm, backend=backend))
    profile = profile_report(algorithm, backend)
    golden = json.loads((BASELINE_DIR / f"{algorithm}.json").read_text())
    assert profile.steps == golden["steps"]
    assert profile.by_kind == golden["by_kind"]
    assert profile.backend == backend
