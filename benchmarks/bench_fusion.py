"""Fused scan pipelines: wall time and peak temporaries, fused vs eager.

The lazy expression DAG (``docs/fusion.md``) promises that deferring a
chain of elementwise operations into one ``fused_pipeline`` dispatch is
(a) never slower than materializing every intermediate, and (b) much
lighter on temporary memory — one pooled buffer on the NumPy backend,
``steps x chunk`` on the Blocked backend — while remaining bit-identical
in both results and step charges.  This file measures all of it on the
workload the design targets: a four-op elementwise chain ending in a
``plus_scan``.
"""
import time
import tracemalloc

import numpy as np

from repro import Machine
from repro.backends import BlockedBackend
from repro.core import scans

from _common import fmt_row, write_report

_report_lines: dict[str, list[str]] = {}

N = 1 << 20
CHUNK = 4_096


def _publish(section: str, lines: list[str]) -> None:
    _report_lines[section] = lines
    flat = []
    for ls in _report_lines.values():
        flat.extend(ls + [""])
    write_report("fusion", flat[:-1])


def _machine(backend: str, fusion: bool) -> Machine:
    if backend == "blocked":
        return Machine("scan", backend=BlockedBackend(chunk=CHUNK),
                       fusion=fusion)
    return Machine("scan", backend=backend, fusion=fusion)


def _workload(m: Machine, data: np.ndarray) -> np.ndarray:
    """Chained elementwise -> scan: 4 deferred steps + terminal."""
    v = m.vector(data)
    return scans.plus_scan((v * 3 + 1) - (v // 7)).data


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_wallclock_fused_vs_eager(benchmark):
    rng = np.random.default_rng(0)
    data = rng.integers(-10**6, 10**6, N)

    widths = [9, 12, 12, 8]
    lines = [f"Wall-clock, elementwise chain + plus_scan "
             f"(n={N:,}, best of 5)",
             fmt_row(["backend", "eager (ms)", "fused (ms)", "ratio"],
                     widths)]
    for backend in ("numpy", "blocked"):
        m_e = _machine(backend, fusion=False)
        m_f = _machine(backend, fusion=True)
        out_e = _workload(m_e, data)
        out_f = _workload(m_f, data)
        assert np.array_equal(out_e, out_f)
        assert m_e.snapshot().by_kind == m_f.snapshot().by_kind

        t_e = _best_of(lambda: _workload(m_e, data))
        t_f = _best_of(lambda: _workload(m_f, data))
        lines.append(fmt_row([backend, f"{t_e * 1e3:.3f}",
                              f"{t_f * 1e3:.3f}", f"{t_f / t_e:.2f}x"],
                             widths))
    _publish("wallclock", lines)
    benchmark(lambda: _workload(_machine("numpy", True), data))


def test_peak_temporaries_fused_vs_eager():
    data = np.arange(N)
    peaks = {}
    for backend in ("numpy", "blocked"):
        for mode, fusion in (("eager", False), ("fused", True)):
            m = _machine(backend, fusion)
            tracemalloc.start()
            out = _workload(m, data)
            _, peaks[backend, mode] = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            assert len(out) == N

    widths = [9, 8, 14, 18]
    lines = [f"Peak memory incl. output, elementwise chain + plus_scan "
             f"(n={N:,}, chunk={CHUNK:,})",
             fmt_row(["backend", "mode", "peak (bytes)", "bytes / element"],
                     widths)]
    for (backend, mode), peak in peaks.items():
        lines.append(fmt_row([backend, mode, peak, f"{peak / N:.1f}"],
                             widths))
    for backend in ("numpy", "blocked"):
        r = peaks[backend, "eager"] / peaks[backend, "fused"]
        lines.append(f"{backend}: fused peaks at 1/{r:.2f} of eager "
                     f"({r:.2f}x reduction)")
    _publish("memory", lines)

    # the acceptance bar: >= 2x peak-temp reduction on blocked; on numpy
    # the in-place buffer pool holds peak at parity with eager (the win
    # there is allocation churn and wall-clock, not peak liveness)
    assert peaks["blocked", "eager"] >= 2 * peaks["blocked", "fused"]
    assert peaks["numpy", "fused"] <= peaks["numpy", "eager"] * 1.01
