"""Figure 9: parallel line drawing by processor allocation.

Reproduces the figure's three lines (endpoints (11,2)-(23,14),
(2,13)-(13,8), (16,4)-(31,4)), checks the O(1) step complexity, and
benchmarks a large batch.
"""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms import draw_lines, render
from repro.baselines import dda_line

from _common import write_report

FIGURE9 = [[11, 2, 23, 14], [2, 13, 13, 8], [16, 4, 31, 4]]


def test_figure9_reproduction(benchmark):
    def run():
        m = Machine("scan", allow_concurrent_write=True)
        d = draw_lines(m, FIGURE9)
        return d, m.steps

    d, steps = benchmark(run)
    m2 = Machine("scan", allow_concurrent_write=True)
    grid = render(draw_lines(m2, FIGURE9), 32, 16)
    art = ["".join("#" if c else "." for c in row) for row in grid[::-1]]
    lines = [
        "Figure 9: three lines, one processor per pixel",
        f"pixels per line: {d.counts.to_list()} "
        "(paper counts 12/11/16; ours include both endpoints: 13/12/16)",
        f"program steps: {steps} (O(1))",
        "",
        *art,
    ]
    write_report("figure9", lines)

    # exact DDA agreement
    expect = []
    for x0, y0, x1, y1 in FIGURE9:
        expect.extend(dda_line(x0, y0, x1, y1))
    assert [tuple(p) for p in d.pixels().tolist()] == expect


def test_line_drawing_constant_steps(benchmark):
    rng = np.random.default_rng(0)
    big = rng.integers(0, 512, (2000, 4))

    def run():
        m = Machine("scan")
        draw_lines(m, big)
        return m.steps

    big_steps = benchmark(run)
    m = Machine("scan")
    draw_lines(m, FIGURE9)
    write_report("figure9_scaling", [
        "line drawing step counts:",
        f"  3 lines    ({sum(max(abs(x1-x0), abs(y1-y0)) + 1 for x0, y0, x1, y1 in FIGURE9)} pixels): {m.steps} steps",
        f"  2000 lines (~{2000 * 170} pixels): {big_steps} steps",
        "identical: allocation makes pixel count irrelevant to step complexity",
    ])
    assert big_steps == m.steps
