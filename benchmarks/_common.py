"""Shared helpers for the benchmark/reproduction harness.

Each ``bench_*.py`` file regenerates one of the paper's tables or figures:
it times the relevant implementation with pytest-benchmark, prints the
reproduced rows, writes them under ``benchmarks/results/`` (the source data
for EXPERIMENTS.md), and asserts the paper's qualitative shape.
"""
from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_report(name: str, lines: list[str]) -> None:
    """Print a reproduction table and persist it for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print(f"\n{text}")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def fmt_row(cols, widths) -> str:
    return "  ".join(str(c).rjust(w) for c, w in zip(cols, widths))
