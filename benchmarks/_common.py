"""Shared helpers for the benchmark/reproduction harness.

Each ``bench_*.py`` file regenerates one of the paper's tables or figures:
it times the relevant implementation with pytest-benchmark, prints the
reproduced rows, writes them under ``benchmarks/results/`` (the source data
for EXPERIMENTS.md), and asserts the paper's qualitative shape.
"""
from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_report(name: str, lines: list[str]) -> None:
    """Print a reproduction table and persist it for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print(f"\n{text}")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def fmt_row(cols, widths) -> str:
    return "  ".join(str(c).rjust(w) for c, w in zip(cols, widths))


def write_metrics_report(name: str, title: str, prefix: str,
                         footer: list[str] | None = None) -> None:
    """Render every ``repro.observe`` registry instrument under ``prefix``
    as a report table — benchmarks publish measurements into the shared
    metrics registry and this renders them, instead of each bench file
    hand-rolling its own printing."""
    from repro.observe import get_registry

    snapshot = get_registry().snapshot()
    rows = [(key[len(prefix):].lstrip("."), inst)
            for key, inst in sorted(snapshot.items())
            if key.startswith(prefix)]
    assert rows, f"no metrics published under {prefix!r}"
    width = max(len(key) for key, _ in rows)
    lines = [title]
    for key, inst in rows:
        if inst["type"] == "histogram":
            lines.append(f"  {key.ljust(width)}  count={inst['count']} "
                         f"total={inst['total']} min={inst['min']} "
                         f"max={inst['max']}")
        else:
            lines.append(f"  {key.ljust(width)}  {inst['value']}")
    lines.extend(footer or [])
    write_report(name, lines)


def profile_report(algorithm: str, backend: str):
    """Profile one observe workload on ``backend`` and persist the rendered
    span/step report as ``results/profile_<algorithm>_<backend>.txt``."""
    from repro.observe import run_profile

    profile = run_profile(algorithm, backend=backend)
    write_report(f"profile_{algorithm}_{backend.partition(':')[0]}",
                 profile.render_table().splitlines())
    return profile
