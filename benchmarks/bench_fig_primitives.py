"""Figures 1-4, 8 and Table 3: the primitive operations, exactly as the
paper's worked examples show them, plus throughput and a coverage matrix
of which algorithms exercise which scan uses (Table 3).
"""
import numpy as np
import pytest

from repro import Machine
from repro.core import ops, scans, segmented

from _common import fmt_row, write_report


def test_figure_examples_exact(benchmark):
    """Every worked example from Figures 1-4 and 8, byte for byte."""
    def run():
        m = Machine("scan")
        out = {}
        # Figure 1
        out["enumerate"] = ops.enumerate_(
            m.flags([1, 0, 0, 1, 0, 1, 1, 0])).to_list()
        out["copy"] = ops.copy_(m.vector([5, 1, 3, 4, 3, 9, 2, 6])).to_list()
        out["+-distribute"] = scans.plus_distribute(
            m.vector([1, 1, 2, 1, 1, 2, 1, 1])).to_list()
        # +-scan example (Section 2.1)
        out["+-scan"] = scans.plus_scan(
            m.vector([2, 1, 2, 3, 5, 8, 13, 21])).to_list()
        # Figure 3
        a = m.vector([5, 7, 3, 1, 4, 2, 7, 2])
        out["split"] = ops.split(a, m.flags([1, 1, 1, 1, 0, 0, 1, 0])).to_list()
        # Figure 4
        v = m.vector([5, 1, 3, 4, 3, 9, 2, 6])
        sb = m.flags([1, 0, 1, 0, 0, 0, 1, 0])
        out["seg-+-scan"] = segmented.seg_plus_scan(v, sb).to_list()
        out["seg-max-scan"] = segmented.seg_max_scan(v, sb, identity=0).to_list()
        # Figure 8
        _, hp = ops.allocate(m, m.vector([4, 1, 3]))
        out["hpointers"] = hp.to_list()
        return out

    out = benchmark(run)
    expected = {
        "enumerate": [0, 1, 1, 1, 2, 2, 3, 4],
        "copy": [5] * 8,
        "+-distribute": [10] * 8,
        "+-scan": [0, 2, 3, 5, 8, 13, 21, 34],
        "split": [4, 2, 2, 5, 7, 3, 1, 7],
        "seg-+-scan": [0, 5, 0, 3, 7, 10, 0, 2],
        "seg-max-scan": [0, 5, 0, 3, 4, 4, 0, 2],
        "hpointers": [0, 4, 5],
    }
    lines = ["Figures 1-4, 8: worked examples reproduced exactly"]
    for k, v in expected.items():
        assert out[k] == v, k
        lines.append(f"  {k:<14} = {v}")
    write_report("figures_1_4_8", lines)


def test_scan_primitive_throughput(benchmark):
    """Wall-clock throughput of the simulated primitives (host speed, not
    step counts): vectorized NumPy keeps a 1M-element scan sub-millisecond."""
    rng = np.random.default_rng(0)
    data = rng.integers(0, 10**6, 1 << 20)
    m = Machine("scan")
    v = m.vector(data)
    benchmark(lambda: scans.plus_scan(v))


def test_table3_primitive_uses(benchmark):
    """Table 3's cross-reference: each algorithm exercises its advertised
    scan uses, observed through the machine's per-kind charge profile."""
    from repro.algorithms import (
        draw_lines,
        halving_merge,
        minimum_spanning_tree,
        quicksort,
        split_radix_sort,
    )
    from repro.graph import random_connected_graph

    rng = np.random.default_rng(0)

    def profile(fn):
        m = Machine("scan", seed=0)
        fn(m)
        return m.counter.by_kind

    profiles = benchmark(lambda: {
        "split_radix_sort": profile(
            lambda m: split_radix_sort(m.vector(rng.integers(0, 256, 512)))),
        "quicksort": profile(
            lambda m: quicksort(m.vector(rng.permutation(512)))),
        "mst": profile(lambda m: minimum_spanning_tree(
            m, 64, *random_connected_graph(np.random.default_rng(1), 64, 64))),
        "line_drawing": profile(
            lambda m: draw_lines(m, [[0, 0, 50, 20], [5, 9, 40, 2]])),
        "halving_merge": profile(lambda m: halving_merge(
            m.vector(np.sort(rng.integers(0, 999, 256))),
            m.vector(np.sort(rng.integers(0, 999, 256))))),
    })

    lines = ["Table 3: scans/permutes per algorithm (charge profile)",
             fmt_row(["algorithm", "scan", "permute", "elementwise"],
                     [18, 8, 8, 12])]
    for name, prof in profiles.items():
        lines.append(fmt_row([name, prof.get("scan", 0),
                              prof.get("permute", 0),
                              prof.get("elementwise", 0)], [18, 8, 8, 12]))
    write_report("table3_uses", lines)

    # every algorithm leans on scans (enumerating/copying/distributing) and
    # permutes (splitting) — Table 3's columns
    for name, prof in profiles.items():
        assert prof.get("scan", 0) > 0, name
        assert prof.get("permute", 0) > 0, name
