"""Table 1, graph rows: MST / connected components / maximal independent
set step complexity on EREW vs CRCW vs scan machines.

Paper: MST and CC are O(lg² n) EREW, O(lg n) CRCW (extended), O(lg n)
scan; MIS is O(lg² n) on both P-RAMs and O(lg n) scan.
"""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms import (
    biconnected_components,
    connected_components,
    maximal_independent_set,
    minimum_spanning_tree,
)
from repro.graph import random_connected_graph

from _common import fmt_row, write_report

SIZES = (64, 256, 1024)
MODELS = ("erew", "crcw", "scan")


def _steps(algorithm, n, model, seed=0):
    rng = np.random.default_rng(seed)
    edges, weights = random_connected_graph(rng, n, 2 * n)
    m = Machine(model, seed=seed)
    algorithm(m, n, edges, weights)
    return m.steps


def _mst(m, n, e, w):
    return minimum_spanning_tree(m, n, e, w)


def _cc(m, n, e, w):
    return connected_components(m, n, e)


def _mis(m, n, e, w):
    return maximal_independent_set(m, n, e)


def _bcc(m, n, e, w):
    return biconnected_components(m, n, e)


ALGOS = {"mst": _mst, "connected_components": _cc,
         "maximal_independent_set": _mis,
         "biconnected_components": _bcc}


@pytest.mark.parametrize("name", list(ALGOS))
def test_table1_graph_rows(benchmark, name):
    algo = ALGOS[name]
    # wall-time benchmark of the scan-model run at the largest size
    rng = np.random.default_rng(1)
    edges, weights = random_connected_graph(rng, SIZES[-1], 2 * SIZES[-1])

    def run():
        return algo(Machine("scan", seed=1), SIZES[-1], edges, weights)

    benchmark(run)

    # step-complexity reproduction across models and sizes
    table = {model: [int(np.median([_steps(algo, n, model, s) for s in range(3)]))
                     for n in SIZES] for model in MODELS}
    widths = [8] + [10] * len(SIZES)
    lines = [f"Table 1 ({name}): program steps",
             fmt_row(["model"] + [f"n={n}" for n in SIZES], widths)]
    for model in MODELS:
        lines.append(fmt_row([model] + table[model], widths))
    ratio_small = table["erew"][0] / table["scan"][0]
    ratio_big = table["erew"][-1] / table["scan"][-1]
    lines.append(f"erew/scan ratio: {ratio_small:.2f} (n={SIZES[0]}) -> "
                 f"{ratio_big:.2f} (n={SIZES[-1]})  [paper: O(lg n) factor]")
    write_report(f"table1_{name}", lines)

    # shape: scan <= crcw <= erew at every size, and the gap widens
    for i in range(len(SIZES)):
        assert table["scan"][i] <= table["crcw"][i] <= table["erew"][i]
    assert ratio_big > ratio_small
    # scan-model growth is logarithmic-ish: 4x vertices < 2.5x steps
    assert table["scan"][-1] < 2.5 * table["scan"][-2]


def test_table1_max_flow(benchmark):
    """Table 1's maximum flow row: O(n² lg n) EREW vs O(n²) scan — each
    push-relabel pulse is O(1) scan-model steps vs O(lg n) on EREW."""
    from repro.algorithms import max_flow

    rng = np.random.default_rng(0)
    n = 48
    edges, _ = random_connected_graph(rng, n, 3 * n)
    caps = rng.integers(1, 20, len(edges))

    def run():
        m = Machine("scan", seed=0)
        res = max_flow(m, n, edges, caps, 0, n - 1)
        return m, res

    m_scan, res = benchmark(run)
    me = Machine("erew", seed=0)
    res_e = max_flow(me, n, edges, caps, 0, n - 1)
    assert res.value == res_e.value
    lines = [
        f"Table 1 (maximum flow, n={n}, m={len(edges)}):",
        f"  flow value {res.value} in {res.pulses} pulses",
        f"  scan model: {m_scan.steps} steps "
        f"({m_scan.steps / res.pulses:.1f} per pulse)",
        f"  erew:       {me.steps} steps "
        f"({me.steps / res_e.pulses:.1f} per pulse)",
        "  per-pulse ratio is the lg-n factor of Table 1",
    ]
    write_report("table1_max_flow", lines)
    assert me.steps > 2 * m_scan.steps
