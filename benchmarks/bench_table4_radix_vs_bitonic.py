"""Table 4: split radix sort vs Batcher's bitonic sort.

Paper (64K processors, 16-bit keys on the CM-1): split radix 20,000 bit
cycles, bitonic 19,000 — a near tie with bitonic slightly ahead (it ran in
microcode).  Theory: O(d lg n) vs O(d + lg² n).

We reproduce with (a) the closed-form machine-level model (scan circuit +
hypercube routes), (b) the gate-level bitonic network simulation at a
simulable size, and (c) the crossover sweep in d.
"""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms import split_radix_sort
from repro.baselines import bitonic_sort
from repro.hardware import BitonicNetwork, sort_comparison

from _common import fmt_row, write_report


def test_table4_cm_scale(benchmark):
    t = benchmark(lambda: sort_comparison(65536, 16))
    split = t["split_radix"]["simulated_cycles"]
    bitonic = t["bitonic"]["simulated_cycles"]
    lines = [
        "Table 4: split radix sort vs bitonic sort (n=65536, d=16)",
        fmt_row(["", "split radix", "bitonic"], [28, 12, 10]),
        fmt_row(["theory bit time", t["split_radix"]["theory_bit_time"],
                 t["bitonic"]["theory_bit_time"]], [28, 12, 10]),
        fmt_row(["simulated machine cycles", split, bitonic], [28, 12, 10]),
        f"ratio split/bitonic = {split / bitonic:.2f} "
        "(paper measured 20,000/19,000 = 1.05: a near tie, bitonic ahead)",
    ]
    write_report("table4", lines)
    assert bitonic <= split <= 2 * bitonic


def test_table4_crossover_in_key_width(benchmark):
    benchmark(lambda: sort_comparison(65536, 4))
    lines = ["Table 4 sweep: who wins as key width d changes (n=65536)",
             fmt_row(["d", "split radix", "bitonic", "winner"], [4, 12, 10, 12])]
    winners = []
    for d in (2, 4, 8, 16, 24, 32):
        t = sort_comparison(65536, d)
        s = t["split_radix"]["simulated_cycles"]
        b = t["bitonic"]["simulated_cycles"]
        w = "split radix" if s < b else "bitonic"
        winners.append(w)
        lines.append(fmt_row([d, s, b, w], [4, 12, 10, 12]))
    write_report("table4_crossover", lines)
    # split radix wins for narrow keys, bitonic for wide ones
    assert winners[0] == "split radix"
    assert winners[-1] == "bitonic"


def test_table4_gate_level_bitonic(benchmark):
    """The dedicated comparator network, gate-level, at a simulable size."""
    rng = np.random.default_rng(0)
    n, d = 32, 8
    net = BitonicNetwork(n, d)
    vals = rng.integers(0, 1 << d, n)

    out, cycles = benchmark(lambda: net.sort(vals))
    assert np.array_equal(out, np.sort(vals))
    lines = [
        f"gate-level bitonic network (n={n}, d={d}):",
        f"  {cycles} cycles = {d} bits + {net.depth} comparator layers",
        f"  {net.num_comparators()} comparators",
    ]
    write_report("table4_gate_level", lines)
    assert cycles == d + net.depth


def test_table4_program_steps(benchmark):
    """The same comparison at the P-RAM step level: radix uses scans and
    gains from the scan model; bitonic cannot."""
    rng = np.random.default_rng(1)
    n = 4096
    # the paper's standard assumption: keys are O(lg n) bits
    data = rng.integers(0, n, n)

    def run():
        m = Machine("scan")
        return split_radix_sort(m.vector(data)), m.steps

    _, radix_steps = benchmark(run)
    mb = Machine("scan")
    bitonic_sort(mb.vector(data))
    lines = [
        f"program steps sorting n={n} lg(n)-bit keys on the scan model:",
        f"  split radix: {radix_steps}",
        f"  bitonic:     {mb.steps}  (identical on EREW: no scans used)",
    ]
    write_report("table4_program_steps", lines)
    assert radix_steps < mb.steps
