"""Ablations of the design choices DESIGN.md calls out.

1. **Bit pipelining** (Section 3.1): the pipelined tree runs in
   ``m + 2 lg n`` cycles; a word-serial tree would pay ``2 lg n`` full
   word-times (``2 m lg n`` bit cycles).
2. **Direct segmented hardware** (Section 3 remark): one flag bit per
   operand stream versus simulating segmented scans with two widened
   unsegmented scans (Figure 16).
3. **Scans vs strong memory primitives**: the scan-model connected
   components against Shiloach–Vishkin on extended CRCW — the same
   O(lg n) growth achieved from opposite ends of the primitive spectrum.
4. **Random mate**: the measured fraction of trees removed per MST round
   versus the paper's 1/4-in-expectation argument.
"""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms import connected_components, minimum_spanning_tree
from repro.baselines import shiloach_vishkin_components
from repro.graph import from_edges, random_connected_graph, star_merge
from repro.hardware import (
    segmented_scan_cycles,
    simulated_segmented_scan_cycles,
    tree_scan_cycles,
)

from _common import fmt_row, write_report


def test_ablation_bit_pipelining(benchmark):
    benchmark(lambda: tree_scan_cycles(65536, 32))
    lines = ["Ablation: bit-pipelined vs word-serial tree scan (bit cycles)",
             fmt_row(["n", "pipelined", "word-serial", "speedup"],
                     [8, 10, 12, 8])]
    for n in (256, 4096, 65536):
        lg = int(np.log2(n))
        pipelined = tree_scan_cycles(n, 32)
        word_serial = 2 * lg * 32
        lines.append(fmt_row([n, pipelined, word_serial,
                              f"{word_serial / pipelined:.1f}x"], [8, 10, 12, 8]))
        assert pipelined < word_serial / 4
    write_report("ablation_pipelining", lines)


def test_ablation_segmented_hardware(benchmark):
    benchmark(lambda: segmented_scan_cycles(65536, 32))
    lines = ["Ablation: direct segmented circuit vs two-primitive simulation",
             fmt_row(["n", "direct", "simulated", "ratio"], [8, 8, 10, 8])]
    for n in (256, 4096, 65536):
        d = segmented_scan_cycles(n, 32)
        s = simulated_segmented_scan_cycles(n, 32)
        lines.append(fmt_row([n, d, s, f"{s / d:.2f}x"], [8, 8, 10, 8]))
        assert d < s < 3 * d
    write_report("ablation_segmented_hw", lines)


def test_ablation_scan_cc_vs_shiloach_vishkin(benchmark):
    rng = np.random.default_rng(0)
    edges_big, _ = random_connected_graph(rng, 1024, 2048)
    benchmark(lambda: shiloach_vishkin_components(Machine("crcw"), 1024, edges_big))

    lines = ["Ablation: connected components — scan model vs Shiloach-Vishkin "
             "(extended CRCW)",
             fmt_row(["n", "scan steps", "SV/CRCW steps"], [8, 12, 14])]
    growth = {}
    for n in (64, 256, 1024):
        rng = np.random.default_rng(1)
        edges, _ = random_connected_graph(rng, n, 2 * n)
        ms = Machine("scan", seed=1)
        connected_components(ms, n, edges)
        mc = Machine("crcw")
        shiloach_vishkin_components(mc, n, edges)
        growth[n] = (ms.steps, mc.steps)
        lines.append(fmt_row([n, ms.steps, mc.steps], [8, 12, 14]))
    lines.append("both O(lg n); the scan version pays for maintaining the "
                 "segmented representation, SV for the stronger memory model")
    write_report("ablation_cc_sv", lines)
    # both logarithmic: quadrupling n far from quadruples steps
    assert growth[1024][0] < 2.5 * growth[256][0]
    assert growth[1024][1] < 2.5 * growth[256][1]


def test_ablation_treefix(benchmark):
    """The paper's tree-operations remark ([7]): with the Euler-tour form,
    per-vertex tree quantities cost O(lg n) scan-model steps total (build
    included) and each additional +-query is a single scan."""
    from repro.algorithms import build_rooted_tree

    def run(n, model):
        rng = np.random.default_rng(0)
        parent = np.arange(n)
        for v in range(1, n):
            parent[v] = rng.integers(0, v)
        m = Machine(model)
        t = build_rooted_tree(m, parent)
        build_steps = m.steps
        with m.measure() as r:
            t.depths()
            t.subtree_sizes()
            t.subtree_sums(np.ones(n, dtype=np.int64))
        return build_steps, r.delta.steps

    benchmark(lambda: run(1024, "scan"))
    lines = ["Ablation: treefix (Euler tour) — build + three queries",
             fmt_row(["n", "scan build", "scan queries",
                      "erew build"], [8, 12, 14, 12])]
    growth = {}
    for n in (256, 1024, 4096):
        sb, sq = run(n, "scan")
        eb, _ = run(n, "erew")
        growth[n] = (sb, sq, eb)
        lines.append(fmt_row([n, sb, sq, eb], [8, 12, 14, 12]))
    lines.append("query cost is flat (one scan each); the EREW build pays "
                 "the lg-n factor on every scan inside the sort and ranking")
    write_report("ablation_treefix", lines)
    # queries: O(1) scans each => identical step cost at every size
    assert growth[256][1] == growth[4096][1]
    # builds grow gently (lg n), EREW strictly costlier
    assert growth[4096][0] < 2 * growth[1024][0]
    for n in growth:
        assert growth[n][2] > growth[n][0]


def test_ablation_random_mate_rate(benchmark):
    """The random-mate analysis: >= ~1/4 of the trees merge per round in
    expectation.  Measure the realized geometric decay."""
    rng = np.random.default_rng(2)
    n = 2048
    edges, weights = random_connected_graph(rng, n, 2 * n)

    def run():
        m = Machine("scan", seed=5)
        return minimum_spanning_tree(m, n, edges, weights)

    res = benchmark(run)
    # vertex counts per round via a fresh instrumented run
    m = Machine("scan", seed=5)
    g = from_edges(m, n, edges, weights=weights)
    counts = [g.num_vertices]
    # replicate the MST loop once, recording sizes
    from repro.core import segmented
    from repro.core.vector import Vector
    rounds = 0
    while g.num_slots > 0 and rounds < 100:
        rounds += 1
        nv = g.num_vertices
        coin_parent = Vector(m, m.rng.integers(0, 2, size=nv).astype(bool))
        w = g.slot_data["weight"]
        eid = g.slot_data["edge_id"]
        key = w * (2 * len(edges)) + eid
        mn = segmented.seg_min_distribute(key, g.seg_flags)
        candidate = key == mn
        parent_slot = g.vertex_to_slots(coin_parent)
        other_is_parent = parent_slot.permute(g.cross_pointers)
        child_star = candidate & ~parent_slot & other_is_parent
        has_star = g.slots_to_vertex(
            segmented.seg_or_distribute(child_star, g.seg_flags))
        merging_parent = coin_parent | ~has_star
        if not child_star.data.any():
            continue
        star = child_star | child_star.permute(g.cross_pointers)
        g = star_merge(g, star, merging_parent, validate=False).graph
        counts.append(g.num_vertices)

    shrink = [1 - b / a for a, b in zip(counts, counts[1:]) if a > 8]
    mean_shrink = float(np.mean(shrink)) if shrink else 0.0
    write_report("ablation_random_mate", [
        "Ablation: random-mate merge rate per round (paper: 1/4 expected)",
        f"tree counts per round: {counts}",
        f"mean fraction merged per round: {mean_shrink:.3f}",
        f"rounds used: {res.rounds}",
    ])
    assert mean_shrink > 0.2
