"""Fault tolerance: what does trusting the scan primitive cost?

The detection lattice of :mod:`repro.faults`, measured:

1. **Coverage** — a seeded campaign of uniformly random single-bit flips
   inside the tree scan circuit, classified per protection scheme
   (unchecked / streaming checksum / TMR / TMR+checksum).  The headline:
   TMR masks every single-replica flip, so ``tmr`` and ``tmr+checksum``
   must reach >= 99% detected-or-masked.
2. **Hardware price** — extra cycles, state machines and FIFO bits each
   scheme pays over the plain circuit.
3. **Recovery** — a checked ``Machine`` whose injector corrupts scan
   outputs: every fault must be detected by the Section 3.4
   cross-verification and retried into a correct result, with the fault
   ledger reconciling exactly.
4. **Degradation** — retries exhausted, the machine falls back to the
   EREW ``2⌈lg n⌉`` scan costing and still produces correct results.
"""
import numpy as np

from repro import Machine
from repro.core import scans
from repro.faults import (
    CIRCUIT_SCHEMES,
    FaultInjector,
    FaultPlan,
    run_circuit_campaign,
    run_machine_campaign,
)
from repro.faults.campaign import CampaignResult
from repro.hardware import (
    ChecksumTreeScanCircuit,
    PLUS,
    TMRTreeScanCircuit,
    TreeScanCircuit,
    checksum_scan_cycles,
    tmr_scan_cycles,
    tree_scan_cycles,
)

from _common import fmt_row, write_report

N_LEAVES, WIDTH, TRIALS = 8, 8, 250

_report_lines: dict[str, list[str]] = {}


def _publish(section: str, lines: list[str]) -> None:
    """Accumulate sections and rewrite the single results file; sections
    arrive in test order, so the file is complete after the last test."""
    _report_lines[section] = lines
    flat = []
    for ls in _report_lines.values():
        flat.extend(ls + [""])
    write_report("fault_tolerance", flat[:-1])


def test_fault_campaign_coverage(benchmark):
    results = {s: run_circuit_campaign(s, n_leaves=N_LEAVES, width=WIDTH,
                                       trials=TRIALS)
               for s in CIRCUIT_SCHEMES}
    benchmark(lambda: run_circuit_campaign("checksum", n_leaves=N_LEAVES,
                                           width=WIDTH, trials=20))
    lines = [f"Fault-injection campaign: {TRIALS} random single-bit flips "
             f"per scheme (n={N_LEAVES}, width={WIDTH}, seeded)",
             CampaignResult.header()]
    for s in CIRCUIT_SCHEMES:
        lines.append(results[s].row())
    _publish("campaign", lines)

    # every scheme strictly improves on the one below it on this seed set
    assert results["checksum"].coverage > results["unchecked"].coverage
    assert results["tmr"].coverage >= 0.99
    assert results["tmr+checksum"].coverage >= 0.99
    # the acceptance bar: detected-or-masked >= 99% for checksum+TMR
    covered = results["tmr+checksum"]
    assert covered.silent <= 0.01 * covered.trials
    # the unchecked circuit must be visibly vulnerable, or the campaign
    # is not exercising anything
    assert results["unchecked"].silent > 0


def test_hardware_price():
    plain = TreeScanCircuit(N_LEAVES, WIDTH, PLUS)
    csum = ChecksumTreeScanCircuit(N_LEAVES, WIDTH, PLUS)
    tmr = TMRTreeScanCircuit(N_LEAVES, WIDTH, PLUS)
    both = TMRTreeScanCircuit(N_LEAVES, WIDTH, PLUS, checksum=True)
    base_cycles = tree_scan_cycles(N_LEAVES, WIDTH)
    rows = [
        ("plain", base_cycles, plain.num_state_machines(),
         plain.total_shift_register_bits()),
        ("checksum", checksum_scan_cycles(N_LEAVES, WIDTH),
         csum.num_state_machines(), csum.total_shift_register_bits()),
        ("tmr", tmr_scan_cycles(N_LEAVES, WIDTH),
         tmr.num_state_machines(), tmr.total_shift_register_bits()),
        ("tmr+checksum", tmr_scan_cycles(N_LEAVES, WIDTH, checksum=True),
         both.num_state_machines(), both.total_shift_register_bits()),
    ]
    lines = [f"Hardware price per scheme (n={N_LEAVES}, width={WIDTH})",
             fmt_row(["scheme", "cycles", "state machines", "FIFO bits"],
                     [14, 8, 16, 11])]
    for name, cyc, sms, bits in rows:
        lines.append(fmt_row([name, cyc, sms, bits], [14, 8, 16, 11]))
    _publish("hardware", lines)

    # checksum: constant extra cycles, +1 SM per circuit; TMR: ~3x hardware
    # at (nearly) unchanged latency
    assert checksum_scan_cycles(N_LEAVES, WIDTH) == base_cycles + 2
    assert tmr.num_state_machines() == 3 * plain.num_state_machines()
    assert tmr_scan_cycles(N_LEAVES, WIDTH) <= base_cycles + 1


def test_machine_recovery_ledger(benchmark):
    res = run_machine_campaign(trials=60, n=64)
    benchmark(lambda: run_machine_campaign(trials=5, n=64))
    lines = ["Checked-machine recovery: one scan-output bit flip per trial",
             res.summary()]
    _publish("recovery", lines)

    assert res.all_correct
    assert res.all_reconciled
    assert res.degraded_machines == 0
    t = res.totals
    # every injected fault was caught and retried away, none slipped through
    assert t.injected == t.detected == t.retried == t.corrected == res.trials
    assert t.injected - t.detected - t.masked == 0  # undetected == 0


def test_degraded_mode_costs():
    n = 256
    plan = FaultPlan(probability=1.0, probability_kinds=("scan",), seed=3)
    m = Machine("scan", reliability=True, fault_injector=FaultInjector(plan))
    data = np.arange(n)
    first = scans.plus_scan(m.vector(data))
    assert m.scan_unit_failed  # persistent corruption wrote the unit off
    after_fail = m.steps
    second = scans.plus_scan(m.vector(data))
    degraded_cost = m.steps - after_fail

    expected = np.zeros(n, dtype=np.int64)
    np.cumsum(data[:-1], out=expected[1:])
    assert np.array_equal(first.data, expected)
    assert np.array_equal(second.data, expected)
    # the fallback charges the EREW 2 lg n tree, not the unit-step scan
    assert degraded_cost == 2 * int(np.ceil(np.log2(n)))
    snap = m.snapshot()
    assert snap.degraded and snap.by_kind["scan_degraded"] > 0

    healthy = Machine("scan")
    scans.plus_scan(healthy.vector(data))
    lines = [f"Degraded mode (n={n}): healthy scan = {healthy.steps} step(s), "
             f"EREW-fallback scan = {degraded_cost} steps "
             f"(2 lg n = {2 * int(np.ceil(np.log2(n)))}); results identical"]
    _publish("degraded", lines)
