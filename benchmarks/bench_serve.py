"""Scan-as-a-service throughput: batched vs eager per-request execution.

Not a paper table — the serving layer's health check, and the receipt
for the PR's acceptance bar: coalescing concurrent small scans into
segmented mega-ops must at least **double** throughput over the
unbatched per-request path.  Three measurements:

1. **Engine level** — k identical 1k-element +-scans through
   :meth:`BatchEngine.run_solo` one by one, versus the same requests
   fused into mega-ops of 64 via :meth:`BatchEngine.run_group`.  No
   sockets, no JSON: this isolates exactly what batching buys (one
   machine dispatch and one backend pass amortized over 64 requests) and
   carries the >= 2x assertion.
2. **Cost model** — the same comparison in program steps: the segmented
   mega-op charges one scan's steps for the whole group, so
   steps-per-request collapses by ~the occupancy.  This is the paper's
   argument (k independent scans = one segmented primitive) stated as a
   meter reading.
3. **End to end** — thousands of simulated concurrent clients (client
   coroutines multiplexed over pipelined connections) against a live
   server, once with batching disabled (``max_batch=1``, the eager
   path) and once with the default batcher; wall-clock throughput,
   occupancy, and latency quantiles reported from the server's own SLO
   accounting.  JSON framing and the event loop dominate here, so this
   row reports the *service* win honestly rather than re-asserting the
   engine ratio.

Run standalone (``python benchmarks/bench_serve.py [--smoke]``) or under
pytest (``pytest benchmarks/bench_serve.py``).
"""
import argparse
import asyncio
import sys
import time

import numpy as np

from repro.serve import BatchEngine, SERVABLE_OPS, ScanServer, ServeClient, \
    ServeConfig

from _common import fmt_row, write_report

_report_lines: dict = {}


def _publish(section: str, lines: list) -> None:
    _report_lines[section] = lines
    flat = []
    for ls in _report_lines.values():
        flat.extend(ls + [""])
    write_report("serve", flat[:-1])


# --------------------------------------------------------------------- #
# 1 + 2: engine-level wall clock and cost-model steps
# --------------------------------------------------------------------- #

def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _measure_one_size(requests: int, n: int, max_batch: int):
    spec = SERVABLE_OPS["plus_scan"]
    engine = BatchEngine()
    rng = np.random.default_rng(0)
    vecs = [rng.integers(-(1 << 40), 1 << 40, size=n, dtype=np.int64)
            for _ in range(requests)]

    solo_outs, batched_outs = [], []
    steps = {"solo": 0, "batched": 0}

    def run_solo():
        solo_outs.clear()
        steps["solo"] = 0
        for v in vecs:
            out, s = engine.run_solo(spec, v, None)
            solo_outs.append(out)
            steps["solo"] += s

    def run_batched():
        batched_outs.clear()
        steps["batched"] = 0
        for i in range(0, requests, max_batch):
            parts = [(v, None) for v in vecs[i:i + max_batch]]
            outs, s, _ = engine.run_group(spec, parts)
            batched_outs.extend(outs)
            steps["batched"] += s

    t_solo = _best_of(run_solo)
    t_batched = _best_of(run_batched)
    for a, b in zip(solo_outs, batched_outs):
        assert np.array_equal(a, b), "batching changed a result"
    return t_solo, t_batched, steps["solo"], steps["batched"]


def engine_comparison(requests: int = 256, max_batch: int = 64,
                      sizes=(64, 128, 256, 512, 1000)):
    """Sweep request sizes; return {n: speedup}.  Small requests are the
    serving scenario (that is what concurrent clients send and what the
    batcher coalesces); large ones show the win eroding as the segmented
    construction's constant factor catches up with per-request overhead
    — the honest crossover, reported rather than hidden."""
    widths = (8, 12, 12, 14, 14, 12)
    lines = [
        f"engine: {requests} int64 plus_scans per row, mega-ops of "
        f"{max_batch}, best of 3",
        fmt_row(("n", "solo s", "batched s", "solo req/s",
                 "batched req/s", "speedup"), widths),
    ]
    speedups = {}
    for n in sizes:
        t_solo, t_batched, s_solo, s_batched = _measure_one_size(
            requests, n, max_batch)
        speedups[n] = t_solo / t_batched
        lines.append(fmt_row(
            (n, f"{t_solo:.4f}", f"{t_batched:.4f}",
             f"{requests / t_solo:,.0f}", f"{requests / t_batched:,.0f}",
             f"{speedups[n]:.1f}x"), widths))
    lines.append(f"cost model: steps/request {s_solo / requests:.1f} solo "
                 f"-> {s_batched / requests:.3f} batched "
                 f"({s_solo / max(s_batched, 1):.1f}x fewer)")
    _publish("engine", lines)
    return speedups


def test_batched_engine_throughput_at_least_2x():
    """The acceptance bar: on small requests (the serving workload)
    batched throughput >= 2x the per-request path, bit-identically."""
    speedups = engine_comparison(sizes=(64, 128, 256))
    for n, speedup in speedups.items():
        assert speedup >= 2.0, f"n={n}: batched speedup {speedup:.2f}x"


# --------------------------------------------------------------------- #
# 3: end-to-end socket path, eager vs batched
# --------------------------------------------------------------------- #

async def _drive(config: ServeConfig, clients: int, requests_each: int,
                 connections: int, n: int):
    """``clients`` simulated client coroutines over ``connections``
    pipelined sockets; returns (wall seconds, SLO snapshot)."""
    server = ScanServer(config)
    await server.start()
    try:
        conns = [await ServeClient.connect("127.0.0.1", server.port)
                 for _ in range(connections)]
        rng = np.random.default_rng(1)
        vecs = [rng.integers(-1000, 1000, size=n, dtype=np.int64)
                for _ in range(64)]

        async def one_client(i: int):
            conn = conns[i % connections]
            for r in range(requests_each):
                await conn.scan("plus_scan", vecs[(i + r) % len(vecs)])

        t0 = time.perf_counter()
        await asyncio.gather(*[one_client(i) for i in range(clients)])
        wall = time.perf_counter() - t0
        for c in conns:
            await c.close()
        return wall, server.stats.snapshot()
    finally:
        await server.shutdown()


def socket_comparison(clients: int, requests_each: int, connections: int,
                      n: int = 512):
    total = clients * requests_each
    # cache off so every request is real work; huge queue so admission
    # never throttles the comparison
    common = dict(port=0, cache_entries=0, max_pending=1 << 20)
    eager_cfg = ServeConfig(batch_window=0.0, max_batch=1, **common)
    batched_cfg = ServeConfig(batch_window=0.005, max_batch=64, **common)

    wall_e, snap_e = asyncio.run(_drive(eager_cfg, clients, requests_each,
                                        connections, n))
    wall_b, snap_b = asyncio.run(_drive(batched_cfg, clients, requests_each,
                                        connections, n))

    widths = (10, 10, 12, 11, 11, 11, 10)
    lines = [
        f"end-to-end: {clients} simulated clients x {requests_each} "
        f"requests of {n} int64 elements over {connections} connections",
        fmt_row(("path", "wall s", "req/s", "occupancy", "steps/req",
                 "p50 ms", "p99 ms"), widths),
    ]
    for label, wall, snap in (("eager", wall_e, snap_e),
                              ("batched", wall_b, snap_b)):
        assert snap["ok"] == total and snap["errors"] == 0, snap
        lines.append(fmt_row(
            (label, f"{wall:.3f}", f"{total / wall:,.0f}",
             snap["mean_batch_occupancy"], snap["steps_per_request"],
             snap["latency_p50_ms"], snap["latency_p99_ms"]), widths))
    lines.append(f"service speedup = {wall_e / wall_b:.2f}x   "
                 f"(JSON framing amortizes; the engine table above is "
                 f"the isolated batching win)")
    _publish("socket", lines)
    return wall_e / wall_b, snap_b


def test_socket_path_batches_under_load():
    """The live server visibly batches under concurrent load and stays
    error-free; occupancy is the lever the engine table proved out."""
    _, snap = socket_comparison(clients=200, requests_each=1,
                                connections=16)
    assert snap["mean_batch_occupancy"] > 1.0, snap


# --------------------------------------------------------------------- #
# Standalone entry point (CI smoke + full runs)
# --------------------------------------------------------------------- #

def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized run: fewer clients, same assertions")
    args = ap.parse_args(argv)

    speedups = engine_comparison(
        sizes=(64, 128, 256) if args.smoke else (64, 128, 256, 512, 1000))
    if args.smoke:
        service_speedup, snap = socket_comparison(
            clients=200, requests_each=1, connections=16)
    else:
        service_speedup, snap = socket_comparison(
            clients=2000, requests_each=2, connections=64)

    small = min(speedups[n] for n in (64, 128, 256))
    print(f"\nengine speedup (small requests) >= {small:.1f}x, "
          f"service speedup {service_speedup:.2f}x, "
          f"occupancy {snap['mean_batch_occupancy']}")
    if small < 2.0:
        print("FAIL: batched engine throughput below 2x", file=sys.stderr)
        return 1
    if snap["mean_batch_occupancy"] <= 1.0:
        print("FAIL: server did not batch under load", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
