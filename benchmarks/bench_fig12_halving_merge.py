"""Figure 12: the halving merge, including the paper's exact example and
the near-merge rotation repair, plus scaling of the recursion.
"""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms import halving_merge, near_merge_fix
from repro.baselines import serial_merge

from _common import fmt_row, write_report


def test_figure12_exact(benchmark):
    A = [1, 7, 10, 13, 15, 20]
    B = [3, 4, 9, 22, 23, 26]

    def run():
        m = Machine("scan")
        merged, flags = halving_merge(m.vector(A), m.vector(B))
        return merged.to_list(), flags.to_list(), m.steps

    merged, flags, steps = benchmark(run)
    assert merged == [1, 3, 4, 7, 9, 10, 13, 15, 20, 22, 23, 26]

    m = Machine("scan")
    near = m.vector([1, 7, 3, 4, 9, 22, 10, 13, 15, 20, 23, 26])
    fixed = near_merge_fix(near)
    write_report("figure12", [
        "Figure 12: halving merge of A=[1 7 10 13 15 20], B=[3 4 9 22 23 26]",
        f"  merged      = {merged}",
        f"  merge flags = {['T' if f else 'F' for f in flags]}",
        f"  near-merge  = {near.to_list()}",
        f"  x-near-merge= {fixed.to_list()}",
        f"  steps       = {steps}",
    ])
    assert fixed.to_list() == merged


def test_halving_merge_scaling(benchmark):
    rng = np.random.default_rng(0)
    n = 1 << 14
    a = np.sort(rng.integers(0, 10**6, n))
    b = np.sort(rng.integers(0, 10**6, n))

    def run():
        m = Machine("scan")
        merged, _ = halving_merge(m.vector(a), m.vector(b))
        return merged, m.steps

    merged, _ = benchmark(run)
    assert np.array_equal(merged.data, serial_merge(a, b))

    lines = ["halving merge: steps vs n (p = n: O(lg n) levels, O(1) each)",
             fmt_row(["n", "steps"], [8, 8])]
    steps = []
    for nn in (1 << 8, 1 << 10, 1 << 12, 1 << 14):
        aa = np.sort(rng.integers(0, 10**6, nn))
        bb = np.sort(rng.integers(0, 10**6, nn))
        m = Machine("scan")
        halving_merge(m.vector(aa), m.vector(bb))
        steps.append(m.steps)
        lines.append(fmt_row([nn, m.steps], [8, 8]))
    write_report("figure12_scaling", lines)
    # steps ~ lg n with p = n: 64x the data is +6 levels on top of 8, so
    # less than a 2x step increase (far below the 64x of an O(n) algorithm)
    assert steps[-1] < 2.0 * steps[0]
