"""Table 1, sorting & merging rows: split radix sort, quicksort, bitonic
sort, and the halving merge across machine models.

Paper: sorting is O(lg n) in all three columns (different algorithms);
merging is O(lg n) EREW and reaches its best at O(n/p + lg n) with scans.
Also reproduces the 'quicksort ~ 2x split radix sort' measurement.
"""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms import halving_merge, quicksort, split_radix_sort
from repro.baselines import bitonic_sort

from _common import fmt_row, write_report

SIZES = (256, 1024, 4096)


def _sort_steps(fn, n, model, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, n, n)
    m = Machine(model, seed=seed)
    out = fn(m.vector(data))
    assert out.to_list() == sorted(data.tolist())
    return m.steps


@pytest.mark.parametrize("name,fn", [
    ("split_radix", split_radix_sort),
    ("quicksort", quicksort),
    ("bitonic", bitonic_sort),
])
def test_table1_sorting(benchmark, name, fn):
    rng = np.random.default_rng(0)
    data = rng.integers(0, SIZES[-1], SIZES[-1])
    benchmark(lambda: fn(Machine("scan", seed=0).vector(data)))

    table = {model: [int(np.median([_sort_steps(fn, n, model, s)
                                    for s in range(3)])) for n in SIZES]
             for model in ("erew", "scan")}
    widths = [8, 10, 10, 10]
    lines = [f"Table 1 (sorting: {name}): program steps",
             fmt_row(["model"] + [f"n={n}" for n in SIZES], widths)]
    for model, row in table.items():
        lines.append(fmt_row([model] + row, widths))
    write_report(f"table1_sorting_{name}", lines)

    if name == "bitonic":
        # bitonic uses no scans: identical cost on both models (Θ(lg² n))
        assert table["erew"] == table["scan"]
    else:
        assert table["scan"][-1] < table["erew"][-1]
        # scan-model growth stays tame: 16x keys, < 3x steps
        assert table["scan"][-1] < 3 * table["scan"][0]


def test_quicksort_vs_radix_factor(benchmark):
    """The paper: segmented quicksort ran ~2x the split radix sort on the
    CM.  The structural counterpart is the number of full-vector passes —
    d split passes for the radix sort versus ~1.4 lg n expected quicksort
    iterations — since on the CM each pass cost about the same (dominated
    by the route).  Step counts are reported too: quicksort's iterations
    are constant-factor heavier in primitives."""
    from repro.algorithms.quicksort import QuicksortTrace
    from repro.algorithms.radix_sort import key_bits

    rng = np.random.default_rng(1)
    n = 4096
    data = rng.integers(0, n, n)

    def both():
        mr = Machine("scan", seed=1)
        split_radix_sort(mr.vector(data))
        mq = Machine("scan", seed=1)
        trace = QuicksortTrace()
        quicksort(mq.vector(data), trace=trace)
        return mr.steps, mq.steps, trace.iterations

    radix_steps, quick_steps, quick_iters = benchmark(both)
    radix_passes = key_bits(Machine("scan").vector(data))
    pass_factor = quick_iters / radix_passes
    step_factor = quick_steps / radix_steps
    write_report("table1_quicksort_factor", [
        f"split radix sort: {radix_passes} passes, {radix_steps} steps",
        f"quicksort:        {quick_iters} iterations, {quick_steps} steps",
        f"pass factor: {pass_factor:.2f} (paper measured ~2x wall time on "
        "the CM, where both passes cost about one route)",
        f"step factor: {step_factor:.2f} (quicksort iterations use more "
        "primitives per pass in this simulation)",
    ])
    assert 1.0 < pass_factor < 4.0
    assert step_factor > 1.0


def test_table1_merging(benchmark):
    """Merging: Table 1 lists O(lg n) EREW, O(lg lg n) CRCW, O(lg lg n)
    scan+CRCW-merge class.  We measure the halving merge under EREW/scan
    charging and Valiant's doubly-logarithmic merge on CREW."""
    from repro.baselines import valiant_merge

    rng = np.random.default_rng(2)
    n = SIZES[-1]
    a = np.sort(rng.integers(0, 10**6, n))
    b = np.sort(rng.integers(0, 10**6, n))

    def run():
        m = Machine("scan")
        return halving_merge(m.vector(a), m.vector(b))

    benchmark(run)

    lines = ["Table 1 (merging): program steps",
             fmt_row(["algorithm/model"] + [f"n={n}" for n in SIZES],
                     [24, 10, 10, 10])]
    table = {}
    for label, model, fn in (
        ("halving (erew)", "erew", halving_merge),
        ("halving (scan)", "scan", halving_merge),
        ("valiant (crew)", "crew", None),
    ):
        row = []
        for n_ in SIZES:
            aa = np.sort(rng.integers(0, 10**6, n_))
            bb = np.sort(rng.integers(0, 10**6, n_))
            m = Machine(model)
            if fn is not None:
                fn(m.vector(aa), m.vector(bb))
            else:
                valiant_merge(m.vector(aa), m.vector(bb))
            row.append(m.steps)
        table[label] = row
        lines.append(fmt_row([label] + row, [24, 10, 10, 10]))
    lines.append("valiant's near-flat row is the O(lg lg n) CRCW column")
    write_report("table1_merging", lines)
    assert table["halving (scan)"][-1] < table["halving (erew)"][-1]
    assert table["valiant (crew)"][-1] < table["halving (scan)"][-1]
    # doubly logarithmic: 16x the data adds almost nothing
    assert table["valiant (crew)"][-1] <= table["valiant (crew)"][0] + 6
