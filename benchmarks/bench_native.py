"""The native two-phase Blelloch backend vs whole-vector NumPy.

Not a paper table — the harness's health check for the native backend
(`repro.backends.native`).  The claim under measurement: the two-phase
upsweep/downsweep schedule, compiled with Numba's ``parallel=True``,
turns the scan from a memory-bound serial pass into ``p`` cooperating
block passes, and at ``n >= 10^7`` that is worth ~5-10x over
``np.cumsum`` on a multicore host.

The report is **honest about its mode**: on a host without Numba (or
with ``REPRO_NATIVE_PURE=1``) the backend runs its pure fallback — the
same per-block schedule as vectorized NumPy expressions — whose point is
graceful degradation and conformance, not speed, so the table documents
the expected crossover instead of claiming one.  Results are asserted
bit-identical to NumPy in every mode regardless (integer scans are
associative mod 2**width; that part is not allowed to depend on speed).
"""
import os
import time

import numpy as np

from repro.backends import NativeBackend, NumPyBackend
from repro.backends.native import HAVE_NUMBA

from _common import fmt_row, write_report

SIZES = (1 << 20, 10**7)


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _mode(backend) -> str:
    if backend.compiled:
        import numba
        return f"numba ({numba.get_num_threads()} threads)"
    return ("pure fallback (numba not installed)" if not HAVE_NUMBA
            else "pure fallback (REPRO_NATIVE_PURE)")


def test_native_vs_numpy_scans():
    rng = np.random.default_rng(0)
    numpy_b = NumPyBackend()
    native_b = NativeBackend()

    widths = [14, 13, 12, 12, 9]
    lines = [f"Native two-phase scans vs whole-vector NumPy "
             f"[mode: {_mode(native_b)}, "
             f"cpus={os.cpu_count()}] (best of 3)",
             fmt_row(["op", "n", "numpy (ms)", "native (ms)", "speedup"],
                     widths)]

    speedups = {}
    for n in SIZES:
        values = rng.integers(-(1 << 40), 1 << 40, n, dtype=np.int64)
        flags = np.zeros(n, dtype=bool)
        flags[::977] = True
        flags[0] = True

        for op, np_fn, nat_fn in [
            ("plus_scan",
             lambda: numpy_b.plus_scan(values),
             lambda: native_b.plus_scan(values)),
            ("seg_plus_scan",
             lambda: numpy_b.seg_plus_scan(values, flags),
             lambda: native_b.seg_plus_scan(values, flags)),
        ]:
            want, got = np_fn(), nat_fn()
            assert np.array_equal(want, got), (op, n)  # correctness first
            if native_b.compiled:
                nat_fn()  # JIT warm-up out of the timings
            t_np, t_nat = _best_of(np_fn), _best_of(nat_fn)
            speedups[(op, n)] = t_np / t_nat
            lines.append(fmt_row(
                [op, n, f"{t_np * 1e3:.2f}", f"{t_nat * 1e3:.2f}",
                 f"{t_np / t_nat:.2f}x"], widths))

    lines.append("")
    if native_b.compiled and (os.cpu_count() or 1) > 1:
        lines.append(
            "compiled mode on a multicore host: the two-phase schedule "
            "should sit at ~5-10x for n >= 10^7 (upsweep and downsweep "
            "each stream the vector once, across all cores)")
        # the honest bar on real multicore hardware; single-core CI legs
        # and the pure fallback document instead of assert
        assert speedups[("plus_scan", 10**7)] > 2.0, speedups
    else:
        lines.append(
            "crossover note: this host runs the pure fallback "
            "(or a single core), which mirrors the blocked backend's "
            "chunk math — parity with NumPy is the expected result, and "
            "the ~5-10x target applies to the Numba-compiled kernels on "
            "a multicore host (see docs/native.md for the install "
            "matrix and measured numbers per mode)")
        # parity, not speed: the fallback must stay within a small
        # constant factor of whole-vector numpy
        assert speedups[("plus_scan", 10**7)] > 0.2, speedups

    write_report("native", lines)
