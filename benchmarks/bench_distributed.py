"""The distributed backend: scaling across worker counts, and what
recovery costs.

Not a paper table — the harness's own health check for the sharded
multi-process backend (`repro.backends.distributed` + `repro.cluster`).
Three measurements:

1. **Worker scaling, 1 → 16** — wall-clock for a +-scan at n = 2^20 as
   the pool widens, against the in-process NumPy backend.  The numbers
   are reported against ``os.cpu_count()`` honestly: on a single-CPU
   container every worker timeshares one core, so the point of the table
   is the *overhead curve* (shared-memory setup, carry exchange, reply
   round-trips), not a speedup claim.  The carry exchange's round count
   is asserted to follow the ⌈lg p⌉ bound.
2. **Recovery overhead, quantified** — the same scan with a scripted
   chaos kill (worker death mid-phase-1 → classify → respawn → retry)
   and with a deadline-tuned hang (timeout → respawn → retry), each
   reported as overhead versus the clean distributed run.  Results stay
   bit-identical throughout — every row asserts it.
3. **Degradation floor** — a pool whose every worker is sticky-killed
   ends up computing host-side; the row quantifies what the retry ladder
   costs when it loses, and the ledger must still reconcile.
"""
import os
import time

import numpy as np

from repro.backends.distributed import DistributedBackend
from repro.backends.numpy_backend import NumPyBackend
from repro.cluster import ChaosAction, ChaosPlan, RetryPolicy, exchange_rounds

from _common import fmt_row, write_report

_report_lines: dict[str, list[str]] = {}

N = 1 << 20
QUICK = RetryPolicy(op_deadline=15.0, backoff_base=0.01, backoff_cap=0.05,
                    heartbeat_interval=1000.0)


def _publish(section: str, lines: list[str]) -> None:
    _report_lines[section] = lines
    flat = []
    for ls in _report_lines.values():
        flat.extend(ls + [""])
    write_report("distributed", flat[:-1])


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _data():
    return np.random.default_rng(0).integers(0, 1000, size=N)


def test_scaling_one_to_sixteen_workers():
    values = _data()
    oracle = NumPyBackend()
    want = oracle.plus_scan(values)
    t_np = _best_of(lambda: oracle.plus_scan(values))

    widths = [8, 12, 12, 10, 8]
    lines = [f"Worker scaling: +-scan, n = 2^20 int64, best of 3 "
             f"(host has {os.cpu_count()} CPU(s) — workers timeshare; "
             f"this is the overhead curve, not a speedup claim)",
             fmt_row(["workers", "dist (ms)", "numpy (ms)", "vs numpy",
                      "rounds"], widths)]
    for workers in (1, 2, 4, 8, 16):
        backend = DistributedBackend(workers=workers, min_distribute=1,
                                     policy=QUICK)
        try:
            got = backend.plus_scan(values)
            np.testing.assert_array_equal(got, want)
            t = _best_of(lambda: backend.plus_scan(values))
            assert backend.ledger.failures == 0
            assert backend.ledger.reconciles()
            lines.append(fmt_row(
                [workers, f"{t * 1e3:.2f}", f"{t_np * 1e3:.2f}",
                 f"{t / t_np:.1f}x", exchange_rounds(workers)], widths))
        finally:
            backend.shutdown()
    _publish("scaling", lines)


def test_recovery_overhead():
    values = _data()
    want = NumPyBackend().plus_scan(values)

    def timed_run(chaos, policy=QUICK):
        backend = DistributedBackend(workers=4, min_distribute=1,
                                     policy=policy, chaos=chaos)
        try:
            t0 = time.perf_counter()
            got = backend.plus_scan(values)
            elapsed = time.perf_counter() - t0
            np.testing.assert_array_equal(got, want)
            assert backend.ledger.reconciles()
            return elapsed, backend.ledger
        finally:
            backend.shutdown()

    t_clean, _ = timed_run(None)

    kill = ChaosPlan(actions=(
        ChaosAction(op_id=0, worker=1, kind="kill"),), seed=7)
    t_kill, led_kill = timed_run(kill)
    assert (led_kill.crashes, led_kill.retries, led_kill.respawns) == (1, 1, 1)

    hang_policy = RetryPolicy(op_deadline=0.5, backoff_base=0.01,
                              backoff_cap=0.05, heartbeat_interval=1000.0)
    hang = ChaosPlan(actions=(
        ChaosAction(op_id=0, worker=1, kind="hang"),), seed=7)
    t_hang, led_hang = timed_run(hang, policy=hang_policy)
    assert (led_hang.timeouts, led_hang.retries) == (1, 1)

    degrade_policy = RetryPolicy(op_deadline=15.0, backoff_base=0.01,
                                 backoff_cap=0.05, heartbeat_interval=1000.0,
                                 max_retries=1, max_worker_failures=10)
    sticky = ChaosPlan(actions=tuple(
        ChaosAction(op_id=0, worker=w, kind="kill", sticky=True)
        for w in range(4)), seed=7)
    t_degr, led_degr = timed_run(sticky, policy=degrade_policy)
    assert led_degr.degraded_shards == 4

    widths = [26, 12, 14, 34]
    lines = ["Recovery overhead: +-scan, n = 2^20, 4 workers, one run each "
             "(result bit-identical to numpy in every row)",
             fmt_row(["scenario", "time (ms)", "vs clean", "ledger"], widths),
             fmt_row(["clean distributed", f"{t_clean * 1e3:.2f}", "1.0x",
                      "no failures"], widths),
             fmt_row(["1 worker killed",
                      f"{t_kill * 1e3:.2f}", f"{t_kill / t_clean:.1f}x",
                      f"1 crash, 1 retry, 1 respawn"], widths),
             fmt_row(["1 worker hung (0.5s ddl)",
                      f"{t_hang * 1e3:.2f}", f"{t_hang / t_clean:.1f}x",
                      f"1 timeout, 1 retry"], widths),
             fmt_row(["all workers sticky-killed",
                      f"{t_degr * 1e3:.2f}", f"{t_degr / t_clean:.1f}x",
                      f"{led_degr.crashes} crashes, {led_degr.retries} "
                      f"retries, 4 shards degraded"], widths)]
    _publish("recovery", lines)
