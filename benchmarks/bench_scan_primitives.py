"""Throughput of the simulated primitives themselves (host wall time) and
the primitive-cost parity checks that anchor every other benchmark.

Not a paper table — this is the harness's own health check: the
vectorized NumPy backing must keep million-element primitives cheap
enough that the step-count benchmarks measure models, not Python.
"""
import numpy as np
import pytest

from repro import Machine
from repro.baselines import erew_plus_scan, erew_scan_steps
from repro.core import ops, scans, segmented

from _common import fmt_row, write_report

N = 1 << 20


@pytest.fixture(scope="module")
def big_vector():
    rng = np.random.default_rng(0)
    m = Machine("scan")
    return m, m.vector(rng.integers(0, 10**6, N))


def test_plus_scan_throughput(benchmark, big_vector):
    m, v = big_vector
    benchmark(lambda: scans.plus_scan(v))


def test_max_scan_throughput(benchmark, big_vector):
    m, v = big_vector
    benchmark(lambda: scans.max_scan(v))


def test_segmented_scan_throughput(benchmark, big_vector):
    m, v = big_vector
    sf_arr = np.zeros(N, dtype=bool)
    sf_arr[:: 64] = True
    sf_arr[0] = True
    sf = m.flags(sf_arr)
    benchmark(lambda: segmented.seg_plus_scan(v, sf))


def test_split_throughput(benchmark, big_vector):
    m, v = big_vector
    flags = v.bit(0)
    benchmark(lambda: ops.split(v, flags))


def test_pack_throughput(benchmark, big_vector):
    m, v = big_vector
    flags = v.bit(0)
    benchmark(lambda: ops.pack(v, flags))


def test_primitive_step_parity(benchmark):
    """One table of the exact step charges per primitive per model — the
    numbers the cost-model document promises."""
    def collect():
        rows = []
        for kind, runner in (
            ("elementwise", lambda m: m.vector(range(1024)) + 1),
            ("permute", lambda m: m.vector(range(1024)).reverse()),
            ("scan", lambda m: scans.plus_scan(m.vector(range(1024)))),
            ("broadcast", lambda m: ops.copy_(m.vector(range(1024)))),
            ("reduce", lambda m: scans.plus_reduce(m.vector(range(1024)))),
        ):
            row = [kind]
            for model in ("scan", "erew", "crew", "crcw"):
                m = Machine(model)
                runner(m)
                row.append(m.steps)
            rows.append(row)
        return rows

    rows = benchmark(collect)
    lines = ["primitive step charges at n=1024 (p = n):",
             fmt_row(["primitive", "scan", "erew", "crew", "crcw"],
                     [12, 6, 6, 6, 6])]
    for row in rows:
        lines.append(fmt_row(row, [12, 6, 6, 6, 6]))
    write_report("primitive_parity", lines)

    table = {r[0]: r[1:] for r in rows}
    assert table["scan"] == [1, 20, 20, 20]       # 2 lg 1024 = 20
    assert table["elementwise"] == [1, 1, 1, 1]
    assert table["broadcast"] == [1, 10, 1, 1]
    assert table["reduce"] == [1, 10, 10, 1]

    # the explicit EREW tree really pays what the model charges
    m = Machine("erew")
    erew_plus_scan(m.vector(range(1024)))
    assert m.steps == erew_scan_steps(1024) == 20
