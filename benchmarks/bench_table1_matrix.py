"""Table 1, matrix rows: matrix-matrix O(n), vector-matrix O(1), linear
system solver with pivoting O(n) — versus the EREW lg-n surcharge.
"""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms import mat_mul, mat_vec, solve

from _common import fmt_row, write_report

SIZES = (8, 16, 32)


def test_table1_mat_vec(benchmark):
    rng = np.random.default_rng(0)
    a = rng.standard_normal((SIZES[-1], SIZES[-1]))
    x = rng.standard_normal(SIZES[-1])
    benchmark(lambda: mat_vec(Machine("scan"), a, x))

    lines = ["Table 1 (vector x matrix): program steps",
             fmt_row(["model"] + [f"n={n}" for n in SIZES], [8, 8, 8, 8])]
    table = {}
    for model in ("erew", "scan"):
        row = []
        for n in SIZES:
            m = Machine(model)
            mat_vec(m, rng.standard_normal((n, n)), rng.standard_normal(n))
            row.append(m.steps)
        table[model] = row
        lines.append(fmt_row([model] + row, [8, 8, 8, 8]))
    write_report("table1_mat_vec", lines)
    # scan model: O(1) — flat in n.  EREW: grows (lg n broadcasts).
    assert table["scan"][0] == table["scan"][1] == table["scan"][2]
    assert table["erew"][-1] > table["erew"][0]


def test_table1_mat_mul(benchmark):
    rng = np.random.default_rng(1)
    a = rng.standard_normal((SIZES[-1], SIZES[-1]))
    b = rng.standard_normal((SIZES[-1], SIZES[-1]))
    benchmark(lambda: mat_mul(Machine("scan"), a, b))

    lines = ["Table 1 (matrix x matrix): program steps",
             fmt_row(["model"] + [f"n={n}" for n in SIZES], [8, 8, 8, 8])]
    table = {}
    for model in ("erew", "scan"):
        row = []
        for n in SIZES:
            m = Machine(model)
            mat_mul(m, rng.standard_normal((n, n)), rng.standard_normal((n, n)))
            row.append(m.steps)
        table[model] = row
        lines.append(fmt_row([model] + row, [8, 8, 8, 8]))
    write_report("table1_mat_mul", lines)
    # O(n): doubling n roughly doubles scan-model steps
    r1 = table["scan"][1] / table["scan"][0]
    r2 = table["scan"][2] / table["scan"][1]
    assert 1.6 < r1 < 2.4 and 1.6 < r2 < 2.4
    # EREW grows superlinearly (n lg n)
    assert table["erew"][2] / table["erew"][1] > r2


def test_table1_solver(benchmark):
    rng = np.random.default_rng(2)
    n_big = SIZES[-1]
    a = rng.standard_normal((n_big, n_big)) + n_big * np.eye(n_big)
    b = rng.standard_normal(n_big)
    benchmark(lambda: solve(Machine("scan"), a, b))

    lines = ["Table 1 (linear solver, partial pivoting): program steps",
             fmt_row(["model"] + [f"n={n}" for n in SIZES], [8, 8, 8, 8])]
    table = {}
    for model in ("erew", "scan"):
        row = []
        for n in SIZES:
            m = Machine(model)
            aa = rng.standard_normal((n, n)) + n * np.eye(n)
            solve(m, aa, rng.standard_normal(n))
            row.append(m.steps)
        table[model] = row
        lines.append(fmt_row([model] + row, [8, 8, 8, 8]))
    write_report("table1_solver", lines)
    r = table["scan"][2] / table["scan"][1]
    assert 1.6 < r < 2.4  # O(n)
    assert table["erew"][2] > table["scan"][2]  # the lg n surcharge
