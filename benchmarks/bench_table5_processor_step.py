"""Table 5: processor-step complexity with p = n versus p = n / lg n for
the halving merge, list ranking, and tree contraction.

Paper: all three drop from O(n lg n) processor-steps to O(n) when each of
n/lg n processors simulates lg n elements (Figure 10's long vectors,
Figure 11's load balancing).
"""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms import (
    halving_merge,
    list_rank,
    list_rank_sampled,
    tree_contract,
)
from repro.algorithms.tree_contraction import ExpressionTree

from _common import fmt_row, write_metrics_report, write_report


def _report(name, rows, benchmark_result=None):
    # publish the measurements into the shared observe registry and let
    # the common renderer print/persist them
    from repro.observe import get_registry

    registry = get_registry()
    for p, steps, work in rows:
        registry.gauge(f"table5.{name}.p={p}.steps").set(steps)
        registry.gauge(f"table5.{name}.p={p}.work").set(work)
    ratio = rows[0][2] / rows[-1][2]
    write_metrics_report(
        f"table5_{name}",
        f"Table 5 ({name}): processor-step complexity",
        prefix=f"table5.{name}.",
        footer=[f"work reduction p=n -> p=n/lg n: {ratio:.2f}x "
                "(paper: an O(lg n) factor)"])
    return ratio


def test_table5_halving_merge(benchmark):
    n = 16384
    lg = 14
    rng = np.random.default_rng(0)
    a = np.sort(rng.integers(0, 10**6, n))
    b = np.sort(rng.integers(0, 10**6, n))

    def run(p):
        m = Machine("scan", num_processors=p)
        halving_merge(m.vector(a), m.vector(b))
        return m

    benchmark(lambda: run(None))
    rows = []
    for p in (2 * n, 2 * n // lg):
        m = run(p)
        rows.append((p, m.steps, p * m.steps))
    ratio = _report("halving_merge", rows)
    assert ratio > 3.0  # an lg-n-ish factor


def test_table5_list_ranking(benchmark):
    # splicing beats jumping by Θ(lg n / c) with c ≈ 8 primitives per
    # spliced element, so the gap needs a large n to show clearly
    n = 1 << 19
    lg = 19
    nxt = np.append(np.arange(1, n), -1)

    def jump():
        m = Machine("scan", seed=0)
        list_rank(m.vector(nxt))
        return m

    benchmark(jump)
    m_full = jump()
    p = n // lg
    m_few = Machine("scan", num_processors=p, seed=0)
    list_rank_sampled(m_few.vector(nxt))
    rows = [(n, m_full.steps, n * m_full.steps),
            (p, m_few.steps, p * m_few.steps)]
    ratio = _report("list_ranking", rows)
    assert ratio > 1.2  # splicing is work-efficient; the gap grows with n


def test_table5_tree_contraction(benchmark):
    rng = np.random.default_rng(1)
    tree = ExpressionTree.random(rng, 8192)
    n = tree.n

    def run(p, seed=1):
        m = Machine("scan", num_processors=p, seed=seed)
        val, _ = tree_contract(m, tree)
        assert val == tree.eval_serial()
        return m

    benchmark(lambda: run(None))
    m_full = run(None)
    p = n // 13
    m_few = run(p)
    rows = [(n, m_full.steps, n * m_full.steps),
            (p, m_few.steps, p * m_few.steps)]
    ratio = _report("tree_contraction", rows)
    assert ratio > 3.0


def test_figure10_long_vector_costs(benchmark):
    """Figure 10: a scan over a long vector costs ceil(n/p) serial work per
    block plus one cross-processor scan — measured exactly."""
    from repro.core import scans

    n = 1 << 16

    def run(p):
        m = Machine("scan", num_processors=p)
        scans.plus_scan(m.vector(np.arange(n)))
        return m.steps

    benchmark(lambda: run(64))
    lines = ["Figure 10: +-scan steps over 65536 elements",
             fmt_row(["p", "steps"], [8, 8])]
    for p in (1 << 16, 4096, 256, 64):
        steps = run(p)
        lines.append(fmt_row([p, steps], [8, 8]))
        expect = 1 if p >= n else 2 * (n // p) + 1
        assert steps == expect
    write_report("figure10_long_vectors", lines)
