"""Table 1, computational geometry rows: convex hull, k-d tree, closest
pair, line of sight.

Paper: hull O(lg n) / O(lg n) / O(lg n); k-d tree O(lg² n) EREW vs
O(lg n) scan; closest pair O(lg² n) EREW vs O(lg n) scan; line of sight
O(lg n) EREW vs **O(1)** scan.
"""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms import (
    build_kd_tree,
    closest_pair,
    convex_hull,
    visibility,
)

from _common import fmt_row, write_report

SIZES = (256, 1024, 4096)


def _geometry_steps(fn, n, model, seed=0):
    rng = np.random.default_rng(seed)
    pts = rng.integers(0, 2**14, (n, 2))
    m = Machine(model, seed=seed)
    fn(m, pts)
    return m.steps


@pytest.mark.parametrize("name,fn", [
    ("convex_hull", lambda m, pts: convex_hull(m, pts)),
    ("kd_tree", lambda m, pts: build_kd_tree(m, pts)),
    ("closest_pair", lambda m, pts: closest_pair(m, pts)),
])
def test_table1_geometry(benchmark, name, fn):
    rng = np.random.default_rng(0)
    pts = rng.integers(0, 2**14, (SIZES[-1], 2))
    benchmark(lambda: fn(Machine("scan", seed=0), pts))

    table = {model: [int(np.median([_geometry_steps(fn, n, model, s)
                                    for s in range(2)])) for n in SIZES]
             for model in ("erew", "scan")}
    widths = [8, 10, 10, 10]
    lines = [f"Table 1 (geometry: {name}): program steps",
             fmt_row(["model"] + [f"n={n}" for n in SIZES], widths)]
    for model, row in table.items():
        lines.append(fmt_row([model] + row, widths))
    ratio0 = table["erew"][0] / table["scan"][0]
    ratio2 = table["erew"][-1] / table["scan"][-1]
    lines.append(f"erew/scan ratio widens: {ratio0:.2f} -> {ratio2:.2f}")
    write_report(f"table1_geometry_{name}", lines)

    assert ratio2 > ratio0  # the lg n factor
    assert table["scan"][-1] < 3 * table["scan"][0]  # polylog growth


def test_table1_line_of_sight(benchmark):
    """The O(1) row: scan-model steps do not depend on n at all."""
    def run_once(n, model):
        m = Machine(model)
        alt = m.vector(np.abs(np.sin(np.arange(n))) * 50, dtype=float)
        sf_arr = np.zeros(n, dtype=bool)
        sf_arr[:: max(n // 32, 1)] = True
        sf_arr[0] = True
        sf = m.flags(sf_arr)
        dist = m.vector(np.arange(1, n + 1, dtype=float), dtype=float)
        visibility(alt, sf, dist, 10.0)
        return m.steps

    benchmark(lambda: run_once(SIZES[-1], "scan"))

    lines = ["Table 1 (line of sight): program steps",
             fmt_row(["model"] + [f"n={n}" for n in SIZES], [8, 10, 10, 10])]
    table = {}
    for model in ("erew", "scan"):
        table[model] = [run_once(n, model) for n in SIZES]
        lines.append(fmt_row([model] + table[model], [8, 10, 10, 10]))
    write_report("table1_line_of_sight", lines)

    # scan model: constant; EREW: grows with lg n
    assert table["scan"][0] == table["scan"][1] == table["scan"][2]
    assert table["erew"][-1] > table["erew"][0]
