"""Legacy setup shim: this environment has setuptools but no ``wheel``
package, so PEP-517 editable installs fail with ``invalid command
'bdist_wheel'``.  Keeping a setup.py lets ``pip install -e .`` use the
legacy develop path.  All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
