"""Quickstart: the scan model in five minutes.

Creates a simulated scan-model machine, runs the primitives the paper
builds everything from, and shows the step accounting that backs every
complexity claim in the reproduction.

Run:  python examples/quickstart.py
"""
import numpy as np

from repro import Machine
from repro.core import ops, scans, segmented


def main() -> None:
    # A machine with the two scan primitives as unit-time operations.
    m = Machine("scan", seed=0)

    # --- the primitives (Section 2.1) ---------------------------------- #
    a = m.vector([2, 1, 2, 3, 5, 8, 13, 21])
    print("A            =", a.to_list())
    print("+-scan(A)    =", scans.plus_scan(a).to_list())
    print("max-scan(A)  =", scans.max_scan(a, identity=0).to_list())
    print(f"steps so far = {m.steps} (each scan is ONE program step)\n")

    # --- simple operations (Section 2.2, Figure 1) ---------------------- #
    flags = m.flags([1, 0, 0, 1, 0, 1, 1, 0])
    print("Flag         =", [int(f) for f in flags.to_list()])
    print("enumerate    =", ops.enumerate_(flags).to_list())
    b = m.vector([1, 1, 2, 1, 1, 2, 1, 1])
    print("+-distribute =", scans.plus_distribute(b).to_list(), "\n")

    # --- split and a three-bit radix sort (Figures 2-3) ----------------- #
    keys = m.vector([5, 7, 3, 1, 4, 2, 7, 2])
    print("keys         =", keys.to_list())
    split_once = ops.split(keys, keys.bit(0))
    print("split(bit 0) =", split_once.to_list())
    from repro.algorithms import split_radix_sort
    print("radix sorted =", split_radix_sort(keys).to_list(), "\n")

    # --- segmented scans (Section 2.3, Figure 4) ------------------------ #
    values = m.vector([5, 1, 3, 4, 3, 9, 2, 6])
    seg = m.flags([1, 0, 1, 0, 0, 0, 1, 0])
    print("values       =", values.to_list())
    print("segments     =", [int(f) for f in seg.to_list()])
    print("seg-+-scan   =", segmented.seg_plus_scan(values, seg).to_list())
    print("seg-max-scan =", segmented.seg_max_scan(values, seg, identity=0).to_list(), "\n")

    # --- the cost-model punchline --------------------------------------- #
    data = np.arange(65536)
    for model in ("scan", "erew"):
        mm = Machine(model)
        scans.plus_scan(mm.vector(data))
        print(f"one +-scan of 65536 elements on {model!r}: {mm.steps:>3} program steps")
    print("\nThat lg-n gap, applied everywhere, is the whole paper.")


if __name__ == "__main__":
    main()
