"""Graphics on the scan model: line drawing (Figure 9) and line of sight.

Reproduces the paper's Figure 9 — three lines rasterized by allocating one
processor per pixel — as ASCII art, then runs the O(1)-step line-of-sight
computation over a synthetic terrain.

Run:  python examples/graphics_pipeline.py
"""
import numpy as np

from repro import Machine
from repro.algorithms import draw_lines, line_of_sight_grid, render


def ascii_grid(grid, on="#", off="."):
    return "\n".join("".join(on if c else off for c in row) for row in grid[::-1])


def main() -> None:
    # --- Figure 9: (11,2)-(23,14), (2,13)-(13,8), (16,4)-(31,4) ---------- #
    m = Machine("scan", allow_concurrent_write=True)
    endpoints = [[11, 2, 23, 14], [2, 13, 13, 8], [16, 4, 31, 4]]
    with m.measure() as r:
        drawing = draw_lines(m, endpoints)
    print("Figure 9 — three lines, one processor per pixel")
    print(f"pixels per line: {drawing.counts.to_list()} "
          f"(computed in {r.delta.steps} program steps, O(1))\n")
    print(ascii_grid(render(drawing, 32, 16)))

    # a big batch costs the same number of steps
    rng = np.random.default_rng(0)
    many = rng.integers(0, 200, (500, 4))
    m2 = Machine("scan", allow_concurrent_write=True)
    with m2.measure() as r2:
        d2 = draw_lines(m2, many)
    print(f"\n500 lines / {len(d2.x)} pixels: {r2.delta.steps} steps "
          f"(same as 3 lines: {r.delta.steps})\n")

    # --- line of sight ---------------------------------------------------- #
    print("Line of sight — a ridge and a tower on rolling terrain")
    h = w = 33
    yy, xx = np.mgrid[0:h, 0:w]
    terrain = 3.0 * np.sin(xx / 4.0) + 2.0 * np.cos(yy / 5.0)
    terrain[:, 20] += 8.0          # a north-south ridge
    terrain[8:11, 8:11] += 12.0    # a tower
    observer = (4, 16)

    m3 = Machine("scan", allow_concurrent_write=True)
    vis = line_of_sight_grid(m3, terrain, observer, observer_height=2.0)
    art = np.where(vis, "·", "█")
    art[observer[1], observer[0]] = "O"
    print("\n".join("".join(row) for row in art))
    print(f"\nvisible cells: {int(vis.sum())}/{h * w} "
          f"(the running maximum per ray is ONE segmented max-scan)")


if __name__ == "__main__":
    main()
