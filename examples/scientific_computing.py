"""Scientific computing on the scan model: the matrix algorithms of
Table 1 driving a tiny physics problem.

Solves a 1-D Poisson problem (steady-state heat in a rod) with the O(n)
Gauss-Jordan solver, applies the O(1) vector-matrix product, and shows
the O(n) matrix multiply — all with per-model step counts.

Run:  python examples/scientific_computing.py
"""
import numpy as np

from repro import Machine
from repro.algorithms import mat_mul, mat_vec, solve


def main() -> None:
    n = 24
    # discrete Laplacian with Dirichlet ends: -u'' = f on a rod
    a = 2.0 * np.eye(n) - np.eye(n, k=1) - np.eye(n, k=-1)
    x_axis = np.linspace(0, 1, n)
    f = np.sin(np.pi * x_axis) / (n + 1) ** 2

    print(f"=== solving the {n}-point Poisson system (partial pivoting) ===")
    for model in ("scan", "erew"):
        m = Machine(model)
        u = solve(m, a, f)
        assert np.allclose(a @ u.data, f, atol=1e-10)
        print(f"{model:<6}: {m.steps:>6} steps  "
              f"(Table 1: O(n) scan vs O(n lg n) EREW)")
    peak = float(np.max(u.data))
    bar = "".join("#" if v > peak * (1 - (i + 1) / 8) else " "
                  for i, v in enumerate(np.interp(np.linspace(0, 1, 8),
                                                  x_axis, u.data)))
    print(f"temperature profile (coarse): [{bar}]\n")

    print("=== vector x matrix in O(1) steps ===")
    rng = np.random.default_rng(0)
    for size in (8, 32):
        m = Machine("scan")
        mat = rng.standard_normal((size, size))
        vec = rng.standard_normal(size)
        y = mat_vec(m, mat, vec)
        assert np.allclose(y.data, mat @ vec)
        print(f"n={size:<4} -> {m.steps} steps (same for any n)")
    print()

    print("=== matrix x matrix in O(n) steps ===")
    for size in (4, 8, 16):
        m = Machine("scan")
        A = rng.standard_normal((size, size))
        B = rng.standard_normal((size, size))
        C = mat_mul(m, A, B)
        assert np.allclose(C.to_array(), A @ B)
        print(f"n={size:<4} -> {m.steps} steps")
    print("steps double when n doubles: the O(n) rank-1-update schedule")


if __name__ == "__main__":
    main()
