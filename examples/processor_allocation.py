"""Processor allocation and load balancing (Sections 2.4-2.5, Table 5).

Shows the machinery behind the paper's dynamic-parallelism story:

* allocation — each element requests k new processors, served by one
  +-scan (Figure 8);
* the halving merge, whose step count is O(n/p + lg n) under the
  long-vector cost model;
* Table 5 in miniature: processor-step products for the halving merge,
  list ranking, and tree contraction at p = n vs p = n / lg n.

Run:  python examples/processor_allocation.py
"""
import numpy as np

from repro import Machine
from repro.algorithms import (
    halving_merge,
    list_rank,
    list_rank_sampled,
    tree_contract,
)
from repro.algorithms.tree_contraction import ExpressionTree
from repro.core import ops


def main() -> None:
    # --- allocation (Figure 8) ------------------------------------------ #
    m = Machine("scan")
    values = m.vector([101, 202, 303])
    counts = m.vector([4, 1, 3])
    dist, seg_flags = ops.distribute_to_segments(values, counts)
    print("allocation: counts", counts.to_list(), "->")
    print("  distributed:", dist.to_list())
    print("  segments:   ", [int(f) for f in seg_flags.to_list()], "\n")

    # --- halving merge under the long-vector model ----------------------- #
    rng = np.random.default_rng(3)
    n = 8192
    a = np.sort(rng.integers(0, 10**6, n))
    b = np.sort(rng.integers(0, 10**6, n))
    print(f"=== halving merge of two {n}-element vectors ===")
    print(f"{'processors':>12} {'steps':>8} {'work (p x steps)':>18}")
    for p in (None, n // 13, n // 64):
        mm = Machine("scan", num_processors=p)
        merged, _ = halving_merge(mm.vector(a), mm.vector(b))
        assert np.array_equal(merged.data, np.sort(np.concatenate((a, b))))
        procs = mm.processors
        print(f"{procs:>12} {mm.steps:>8} {procs * mm.steps:>18}")
    print("  -> fewer processors, nearly flat steps: O(n/p + lg n)\n")

    # --- Table 5 in miniature --------------------------------------------- #
    print("=== Table 5: processor-step complexity ===")
    n = 65536
    lg = 16
    nxt = np.append(np.arange(1, n), -1)

    m_full = Machine("scan", seed=1)
    list_rank(m_full.vector(nxt))
    w_full = n * m_full.steps
    m_few = Machine("scan", num_processors=n // lg, seed=1)
    list_rank_sampled(m_few.vector(nxt))
    w_few = (n // lg) * m_few.steps
    print(f"list ranking    p=n: work {w_full:>10}   p=n/lg n: work {w_few:>10}")

    t = ExpressionTree.random(np.random.default_rng(2), 4096)
    m_full = Machine("scan", seed=2)
    tree_contract(m_full, t)
    w_full = t.n * m_full.steps
    m_few = Machine("scan", num_processors=t.n // 12, seed=2)
    tree_contract(m_few, t)
    w_few = (t.n // 12) * m_few.steps
    print(f"tree contraction p=n: work {w_full:>10}   p=n/lg n: work {w_few:>10}")
    print("  -> the lg-n work reduction the paper's Table 5 reports")


if __name__ == "__main__":
    main()
