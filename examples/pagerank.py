"""PageRank on the segmented-sum sparse engine.

A classic irregular workload: power iteration over a sparse link matrix.
Each iteration is one sparse matrix–vector multiply — a gather, a
multiply, and ONE segmented +-distribute, so O(1) program steps per
iteration on the scan model regardless of how skewed the link structure
is.  The graph machinery (connected components) then interprets the
scores' support.

Run:  python examples/pagerank.py
"""
import numpy as np

from repro import Machine
from repro.algorithms import SparseMatrix
from repro.machine import trace


def main() -> None:
    rng = np.random.default_rng(13)
    n = 400
    # a scale-free-ish link structure: preferential attachment
    src, dst = [], []
    for v in range(1, n):
        for _ in range(int(rng.integers(1, 4))):
            target = int(rng.integers(0, v)) if rng.random() < 0.7 \
                else int(rng.integers(0, n))
            if target != v:
                src.append(v)
                dst.append(target)
    m_links = len(src)
    print(f"web graph: {n} pages, {m_links} links")

    # column-stochastic transition matrix (dangling pages jump uniformly)
    out_deg = np.bincount(src, minlength=n).astype(float)
    vals = [1.0 / out_deg[s] for s in src]

    m = Machine("scan")
    transition = SparseMatrix(m, shape=(n, n), rows=dst, cols=src, vals=vals)

    damping = 0.85
    rank = np.full(n, 1.0 / n)
    with trace(m) as t:
        for it in range(60):
            dangling = rank[out_deg == 0].sum()
            spread = transition.matvec(rank)
            new_rank = (damping * (spread.data + dangling / n)
                        + (1 - damping) / n)
            if np.abs(new_rank - rank).sum() < 1e-12:
                rank = new_rank
                break
            rank = new_rank

    top = np.argsort(-rank)[:8]
    print(f"\nconverged after {it + 1} iterations, "
          f"{t.total_steps} total program steps "
          f"(~{t.total_steps // (it + 1)} per iteration, O(1))")
    print("top pages by rank:")
    peak = rank[top[0]]
    for p in top:
        bar = "#" * int(40 * rank[p] / peak)
        print(f"  page {p:>4}: {rank[p]:.5f} {bar}")
    assert abs(rank.sum() - 1.0) < 1e-9


if __name__ == "__main__":
    main()
