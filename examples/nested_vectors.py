"""Nested vectors and profiling: the library-ergonomics tour.

The paper works with raw (values, segment-flags) pairs; downstream users
get :class:`repro.core.SegmentedVector` — a vector of subvectors with the
segmented operations as methods — and the :func:`repro.machine.trace`
profiler that breaks a pipeline's program steps down by phase.

The demo: a fleet of delivery routes (one segment per route), processed
entirely with per-segment scans.

Run:  python examples/nested_vectors.py
"""
import numpy as np

from repro import Machine
from repro.core import SegmentedVector
from repro.machine import trace


def main() -> None:
    m = Machine("scan", seed=0)
    rng = np.random.default_rng(4)

    # one segment per delivery route; values are leg distances (km)
    routes = [list(map(int, rng.integers(3, 40, rng.integers(2, 7))))
              for _ in range(6)]
    legs = SegmentedVector.from_nested(m, routes)
    print("routes (leg distances):")
    for i, r in enumerate(legs.to_nested()):
        print(f"  route {i}: {r}")

    with trace(m) as t:
        with t.phase("odometer"):
            # distance covered before each leg: a segmented +-scan
            odom = legs.plus_scan()
        with t.phase("totals"):
            totals = legs.sums()
            longest_leg = legs.maxima()
        with t.phase("prune"):
            # drop all legs shorter than 10 km, keep the route structure
            keep = legs.values >= 10
            long_legs = legs.pack(keep)

    print("\nkm before each leg:", odom.to_nested())
    print("route totals:      ", totals.to_list())
    print("longest leg/route: ", longest_leg.to_list())
    print("legs >= 10 km:     ", long_legs.to_nested())

    print("\nstep profile (where did the program steps go?):")
    print(t.report())

    # the punchline: the whole pipeline costs the same for 6 routes or 6000
    m2 = Machine("scan")
    big = SegmentedVector.from_lengths(
        m2.vector(rng.integers(3, 40, 30_000)),
        np.full(6000, 5))
    with trace(m2) as t2:
        big.plus_scan()
        big.sums()
        big.pack(big.values >= 10)
    print(f"\nsame pipeline on 6000 routes / 30000 legs: {t2.total_steps} "
          f"steps (vs {t.total_steps} for the toy — independent of size)")


if __name__ == "__main__":
    main()
