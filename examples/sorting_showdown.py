"""Sorting showdown: split radix sort vs quicksort vs bitonic sort.

Reproduces the paper's sorting story end to end:

* program-step counts for the three sorts on the scan model and EREW
  (Table 1's sorting row + the "quicksort runs in about twice the time of
  the split radix sort" remark);
* circuit-level bit-cycle counts for split radix vs bitonic at Connection
  Machine scale (Table 4);
* sorting signed keys with a bias shift.

Run:  python examples/sorting_showdown.py
"""
import numpy as np

from repro import Machine
from repro.algorithms import quicksort, split_radix_sort
from repro.baselines import bitonic_sort
from repro.core import scans
from repro.hardware import sort_comparison


def steps_for(sort_fn, data, model, seed=0):
    m = Machine(model, seed=seed)
    out = sort_fn(m.vector(data))
    assert out.to_list() == sorted(data.tolist())
    return m.steps


def main() -> None:
    rng = np.random.default_rng(7)
    n = 4096
    data = rng.integers(0, n, n)

    print(f"=== program steps sorting {n} keys ({int(data.max()).bit_length()}-bit) ===")
    print(f"{'algorithm':<22}{'scan model':>12}{'erew':>10}")
    rows = [
        ("split radix sort", split_radix_sort),
        ("quicksort", lambda v: quicksort(v)),
        ("bitonic sort", bitonic_sort),
    ]
    table = {}
    for name, fn in rows:
        s = steps_for(fn, data, "scan")
        e = steps_for(fn, data, "erew")
        table[name] = s
        print(f"{name:<22}{s:>12}{e:>10}")

    ratio = table["quicksort"] / table["split radix sort"]
    print(f"\nquicksort / radix step ratio: {ratio:.2f} "
          "(the paper measured ~2x on the CM)\n")

    print("=== Table 4: bit cycles at Connection Machine scale ===")
    print(f"{'n':>8} {'d':>4} {'split radix':>12} {'bitonic':>10} {'winner':>12}")
    for n_keys, d in [(65536, 16), (65536, 4), (4096, 16), (1024, 32)]:
        t = sort_comparison(n_keys, d)
        s = t["split_radix"]["simulated_cycles"]
        b = t["bitonic"]["simulated_cycles"]
        print(f"{n_keys:>8} {d:>4} {s:>12} {b:>10} "
              f"{'split radix' if s < b else 'bitonic':>12}")

    print("\n=== signed keys via bias shift ===")
    m = Machine("scan")
    signed = m.vector(rng.integers(-500, 500, 16))
    lo = scans.min_reduce(signed)
    sorted_back = split_radix_sort(signed - lo) + lo
    print("input :", signed.to_list())
    print("sorted:", sorted_back.to_list())
    assert sorted_back.to_list() == sorted(signed.to_list())


if __name__ == "__main__":
    main()
