"""Dynamic parallelism and the appendix, end to end.

Two workloads the paper motivates but never shows code for:

* **branch and bound** (Section 2.4's chess remark): an exact 0/1
  knapsack search where every level *allocates* processors for the
  surviving children and *load balances* after pruning;
* **the appendix's history**: Ofman's 1963 carry-resolution adder as a
  single segmented or-scan, and Stone's 1971 polynomial evaluation via
  a product scan.

Run:  python examples/search_and_arithmetic.py
"""
import numpy as np

from repro import Machine
from repro.algorithms import (
    big_add,
    evaluate_polynomial,
    knapsack_branch_and_bound,
    knapsack_dp,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # --- branch and bound -------------------------------------------- #
    print("=== exact 0/1 knapsack by frontier allocation + pruning ===")
    n = 24
    values = rng.integers(5, 120, n)
    weights = rng.integers(1, 35, n)
    capacity = 140
    m = Machine("scan", seed=0)
    res = knapsack_branch_and_bound(m, values, weights, capacity)
    assert res.best_value == knapsack_dp(values, weights, capacity)
    print(f"{n} items, capacity {capacity}")
    print(f"optimal value  : {res.best_value} (matches the DP oracle)")
    print(f"nodes expanded : {res.nodes_expanded} of {2**n:,} possible")
    print(f"widest frontier: {res.max_frontier}")
    print(f"program steps  : {m.steps} "
          f"(~{m.steps // res.levels} per level — O(1) per level, however "
          "bushy the tree)\n")

    # --- Ofman addition ------------------------------------------------ #
    print("=== binary addition as one segmented or-scan (appendix) ===")
    a = int(rng.integers(1, 2**62)) ** 8
    b = int(rng.integers(1, 2**62)) ** 8
    m2 = Machine("scan")
    total = big_add(m2, a, b)
    assert total == a + b
    print(f"added two ~{a.bit_length()}-bit numbers in {m2.steps} program "
          "steps (constant, any width)")
    m3 = Machine("scan")
    big_add(m3, 12, 30)
    print(f"the same 14-step pipeline adds 12 + 30 = {12 + 30}: "
          f"{m3.steps} steps\n")

    # --- Stone polynomial evaluation ----------------------------------- #
    print("=== polynomial evaluation via mult-scan(copy(x)) (appendix) ===")
    coeffs = rng.integers(-5, 6, 9).astype(float)
    x = 1.5
    m4 = Machine("scan")
    val = evaluate_polynomial(m4, coeffs, x)
    horner = 0.0
    for c in reversed(coeffs):
        horner = horner * x + c
    print(f"p(x) = {np.polynomial.polynomial.Polynomial(coeffs)}")
    print(f"p({x}) = {val}  (Horner agrees: {horner})")
    print(f"steps = {m4.steps} — the product scan is charged as a "
          "programmed 2 lg n tree, since only +-scan and max-scan are "
          "primitives")


if __name__ == "__main__":
    main()
