"""Graph analytics on the segmented graph representation (Sections 2.3.2-3).

Builds a random weighted graph in Figure 6's representation, runs the O(1)
neighbor operations, then the three graph algorithms — minimum spanning
tree, connected components, maximal independent set — with step counts on
every machine model (Table 1's graph rows).

Run:  python examples/graph_analytics.py
"""
import numpy as np

from repro import Machine
from repro.algorithms import (
    connected_components,
    maximal_independent_set,
    minimum_spanning_tree,
)
from repro.baselines import kruskal_mst, union_find_components
from repro.graph import from_edges, random_connected_graph


def main() -> None:
    rng = np.random.default_rng(11)
    n = 512
    edges, weights = random_connected_graph(rng, n, 2 * n)
    print(f"random connected graph: {n} vertices, {len(edges)} edges\n")

    # --- the representation and its O(1) neighbor operations ------------ #
    m = Machine("scan", seed=0)
    g = from_edges(m, n, edges, weights=weights)
    print(f"segmented representation: {g.num_slots} slots "
          f"({g.num_edges} edges x 2 ends)")
    degrees = m.vector(np.ones(n, dtype=np.int64))
    with m.measure() as r:
        nbr_deg_sum = g.neighbor_reduce(g.neighbor_reduce(degrees, "sum"), "sum")
    print(f"two rounds of neighbor-sum cost {r.delta.steps} steps "
          f"(independent of graph size)\n")
    del nbr_deg_sum

    # --- minimum spanning tree ------------------------------------------ #
    print("=== minimum spanning tree (random-mate star merging) ===")
    _, kruskal_weight = kruskal_mst(n, edges, weights)
    print(f"{'model':<8}{'steps':>10}{'rounds':>8}   total weight")
    for model in ("scan", "crcw", "erew"):
        mm = Machine(model, seed=3)
        res = minimum_spanning_tree(mm, n, edges, weights)
        assert res.total_weight == kruskal_weight
        print(f"{model:<8}{mm.steps:>10}{res.rounds:>8}   {res.total_weight}"
              f" (Kruskal agrees: {kruskal_weight})")
    print()

    # --- connected components on a fragmented graph ---------------------- #
    print("=== connected components ===")
    keep = rng.random(len(edges)) < 0.4
    sparse = edges[keep]
    expect = union_find_components(n, sparse)
    for model in ("scan", "erew"):
        mm = Machine(model, seed=5)
        res = connected_components(mm, n, sparse)
        assert res.num_components == len(set(expect.tolist()))
        print(f"{model:<6}: {res.num_components} components "
              f"in {res.rounds} rounds, {mm.steps} steps")
    print()

    # --- maximal independent set ----------------------------------------- #
    print("=== maximal independent set (Luby with O(1) neighbor reduces) ===")
    mm = Machine("scan", seed=9)
    res = maximal_independent_set(mm, n, edges)
    print(f"|MIS| = {int(res.in_set.sum())} of {n} vertices, "
          f"{res.rounds} rounds, {mm.steps} steps")


if __name__ == "__main__":
    main()
