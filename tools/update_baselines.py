#!/usr/bin/env python
"""Regenerate the committed golden profile baselines (``baselines/*.json``).

Run from the repository root after any *intentional* cost-model or
algorithm change::

    PYTHONPATH=src python tools/update_baselines.py            # all workloads
    PYTHONPATH=src python tools/update_baselines.py radix_sort mst
    PYTHONPATH=src python tools/update_baselines.py --check    # verify only

Each baseline pins the exact program-step total, primitive-invocation
count and per-kind primitive mix of one deterministic workload (see
:mod:`repro.observe.profiles`).  ``tests/test_profile_baselines.py``
replays every committed baseline on multiple execution backends and
fails on any deviation, so regenerated baselines should always land in
the same commit as the change that moved them — that is what makes a
cost-model diff reviewable.

``--check`` exits non-zero if any baseline would change (CI-friendly);
the default mode rewrites the files and prints a summary of movements.
"""
from __future__ import annotations

import argparse
import sys

from repro.observe.baselines import (
    baseline_from_profile,
    default_baseline_dir,
    load_baselines,
    write_baseline,
)
from repro.observe.profiles import available_algorithms, run_profile


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("algorithms", nargs="*",
                        help="workloads to regenerate (default: all)")
    parser.add_argument("--check", action="store_true",
                        help="compare only; exit 1 if any baseline differs")
    parser.add_argument("--dir", default=None,
                        help="baseline directory (default: baselines/ at "
                             "the repo root, or $REPRO_BASELINE_DIR)")
    args = parser.parse_args(argv)

    names = args.algorithms or available_algorithms()
    unknown = sorted(set(names) - set(available_algorithms()))
    if unknown:
        parser.error(f"unknown workloads {unknown}; "
                     f"choose from {available_algorithms()}")

    directory = args.dir or default_baseline_dir()
    existing = load_baselines(directory)
    changed = 0
    for name in names:
        profile = run_profile(name)
        fresh = baseline_from_profile(profile)
        old = existing.get(name)
        if old == fresh:
            print(f"  {name:<26} unchanged ({fresh['steps']} steps)")
            continue
        changed += 1
        if old is None:
            print(f"  {name:<26} NEW: {fresh['steps']} steps, "
                  f"{fresh['ops']} ops")
        else:
            print(f"  {name:<26} {old['steps']} -> {fresh['steps']} steps "
                  f"({fresh['steps'] - old['steps']:+d})")
        if not args.check:
            write_baseline(profile, directory)

    if args.check and changed:
        print(f"{changed} baseline(s) out of date; run "
              f"`PYTHONPATH=src python tools/update_baselines.py`")
        return 1
    print(f"{len(names)} baseline(s) {'checked' if args.check else 'written'} "
          f"in {directory}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
